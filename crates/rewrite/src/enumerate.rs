//! Enumeration of valid rewritings (Definition 2.2).
//!
//! The paper warns that "going through all rewritings would be an
//! impractical implementation" — this module does it anyway (it is
//! the formal semantics, and experiment E1 measures exactly how
//! impractical), but under explicit budgets and with the pruned
//! search of [`crate::prefer`] as the practical alternative.

use crate::bucket::{candidates, Candidate};
use crate::error::Result;
use crate::rewriting::{Rewriting, Subgoal, ViewDefs};
use fgc_query::ast::ConjunctiveQuery;
use fgc_query::{check_safety, normalize, Normalized};
use std::collections::BTreeSet;

/// Options controlling the enumeration.
#[derive(Debug, Clone, Copy)]
pub struct RewriteOptions {
    /// Maximum number of view subgoals per rewriting.
    pub max_views: usize,
    /// Also produce partial rewritings (with base-relation subgoals).
    pub include_partial: bool,
    /// Abort after this many *candidate combinations* were examined.
    pub max_combinations: usize,
    /// Stop early once this many valid rewritings were found
    /// (`usize::MAX` = find all).
    pub stop_after: usize,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            max_views: 6,
            include_partial: true,
            max_combinations: 200_000,
            stop_after: usize::MAX,
        }
    }
}

/// The result of an enumeration.
#[derive(Debug, Clone)]
pub struct Enumeration {
    /// The valid rewritings found, deduplicated up to variable
    /// renaming, in discovery order.
    pub rewritings: Vec<Rewriting>,
    /// Whether the search space was fully explored (false when a
    /// budget or `stop_after` cut it short).
    pub exhaustive: bool,
    /// Number of candidate combinations examined.
    pub combinations_tried: usize,
    /// `true` when the input query was unsatisfiable (it then has no
    /// rewritings and evaluates to ∅ on every database).
    pub unsatisfiable: bool,
}

/// Enumerate the valid rewritings of `query` using `views`.
pub fn enumerate_rewritings(
    query: &ConjunctiveQuery,
    views: &ViewDefs,
    options: RewriteOptions,
) -> Result<Enumeration> {
    check_safety(query)?;
    let normalized = match normalize(query) {
        Normalized::Unsatisfiable => {
            return Ok(Enumeration {
                rewritings: Vec::new(),
                exhaustive: true,
                combinations_tried: 0,
                unsatisfiable: true,
            })
        }
        Normalized::Query(q) => q,
    };
    let cands = candidates(&normalized, views)?;

    let mut state = Search {
        query,
        normalized: &normalized,
        views,
        candidates: &cands,
        options,
        chosen: Vec::new(),
        base: BTreeSet::new(),
        found: Vec::new(),
        seen: BTreeSet::new(),
        combinations: 0,
        exhausted: true,
    };
    state.cover();
    Ok(Enumeration {
        rewritings: state.found,
        exhaustive: state.exhausted,
        combinations_tried: state.combinations,
        unsatisfiable: false,
    })
}

struct Search<'a> {
    query: &'a ConjunctiveQuery,
    normalized: &'a ConjunctiveQuery,
    views: &'a ViewDefs,
    candidates: &'a [Candidate],
    options: RewriteOptions,
    /// Candidate indices chosen so far.
    chosen: Vec<usize>,
    /// Query atoms (indices into `normalized.atoms`) left uncovered.
    base: BTreeSet<usize>,
    found: Vec<Rewriting>,
    seen: BTreeSet<String>,
    combinations: usize,
    exhausted: bool,
}

impl<'a> Search<'a> {
    fn covered(&self) -> BTreeSet<usize> {
        let mut c: BTreeSet<usize> = self.base.clone();
        for &i in &self.chosen {
            c.extend(self.candidates[i].covered.iter().copied());
        }
        c
    }

    fn done(&self) -> bool {
        self.found.len() >= self.options.stop_after
            || self.combinations >= self.options.max_combinations
    }

    /// Variables the rewriting must expose: head variables and
    /// variables of residual comparisons.
    fn needed_vars(&self) -> BTreeSet<&str> {
        let mut vars: BTreeSet<&str> = self
            .normalized
            .head
            .iter()
            .filter_map(|t| t.as_var())
            .collect();
        for c in &self.normalized.comparisons {
            vars.extend(c.vars());
        }
        vars
    }

    /// Variables currently exposed by the chosen subgoals.
    fn bound_vars(&self) -> BTreeSet<&str> {
        let mut vars: BTreeSet<&str> = BTreeSet::new();
        for &i in &self.base {
            vars.extend(self.normalized.atoms[i].vars());
        }
        for &ci in &self.chosen {
            vars.extend(
                self.candidates[ci]
                    .view_atom
                    .args
                    .iter()
                    .filter_map(|t| t.as_var()),
            );
        }
        vars
    }

    /// Set-cover DFS: branch on how the lowest uncovered atom gets
    /// covered — by each covering candidate, or (for partial
    /// rewritings) by remaining a base subgoal. Once all atoms are
    /// covered, a head/comparison variable may still be unbound
    /// (every covering view projected it away): branch over
    /// candidates that expose it.
    fn cover(&mut self) {
        if self.done() {
            self.exhausted = false;
            return;
        }
        self.combinations += 1;
        let covered = self.covered();
        let next_uncovered = (0..self.normalized.atoms.len()).find(|i| !covered.contains(i));
        match next_uncovered {
            None => {
                let bound = self.bound_vars();
                let missing: Option<String> = self
                    .needed_vars()
                    .into_iter()
                    .find(|v| !bound.contains(v))
                    .map(str::to_string);
                match missing {
                    None => self.emit(),
                    Some(var) => {
                        // augment with a candidate exposing `var`
                        for ci in 0..self.candidates.len() {
                            if self.done() {
                                self.exhausted = false;
                                return;
                            }
                            if self.chosen.len() >= self.options.max_views
                                || self.chosen.contains(&ci)
                            {
                                continue;
                            }
                            let exposes = self.candidates[ci]
                                .view_atom
                                .args
                                .iter()
                                .any(|t| t.as_var() == Some(var.as_str()));
                            if !exposes {
                                continue;
                            }
                            self.chosen.push(ci);
                            self.cover();
                            self.chosen.pop();
                        }
                    }
                }
            }
            Some(atom) => {
                for ci in 0..self.candidates.len() {
                    if self.done() {
                        self.exhausted = false;
                        return;
                    }
                    if !self.candidates[ci].covered.contains(&atom) {
                        continue;
                    }
                    if self.chosen.len() >= self.options.max_views {
                        continue;
                    }
                    self.chosen.push(ci);
                    self.cover();
                    self.chosen.pop();
                }
                if self.options.include_partial {
                    self.base.insert(atom);
                    self.cover();
                    self.base.remove(&atom);
                }
            }
        }
    }

    fn build(&self, base: &BTreeSet<usize>, chosen: &[usize]) -> Rewriting {
        let mut subgoals: Vec<Subgoal> = Vec::new();
        for &i in base {
            subgoals.push(Subgoal::Base(self.normalized.atoms[i].clone()));
        }
        for &ci in chosen {
            subgoals.push(Subgoal::View(self.candidates[ci].view_atom.clone()));
        }
        Rewriting {
            name: self.normalized.name.clone(),
            head: self.normalized.head.clone(),
            subgoals,
            comparisons: self.normalized.comparisons.clone(),
        }
    }

    /// Assemble the current selection into a rewriting and validate
    /// it against Definition 2.2.
    fn emit(&mut self) {
        let rewriting = self.build(&self.base, &self.chosen);
        let key = rewriting.canonical_key();
        if !self.seen.insert(key) {
            return;
        }
        if self.validate(&rewriting) == Some(true) {
            self.found.push(rewriting);
        }
    }

    /// Definition 2.2 validity. `None` means an internal error (the
    /// combination is skipped — generate-liberally design).
    ///
    /// * condition 2 — the expansion is equivalent to the query;
    /// * condition 3 — no subgoal (or residual comparison) is
    ///   removable; removable combinations are rejected rather than
    ///   reduced (the reduced combination has its own DFS branch);
    /// * condition 4 — no subset of **base** subgoals can be replaced
    ///   by a view. The paper's Example 2.3 presents `Q1 = V1 ⋈ V2`
    ///   as a rewriting even though `V5` could replace both view
    ///   subgoals, so condition 4 cannot be read as applying to view
    ///   subgoals; we read it as *maximal view coverage of the
    ///   remaining base part* (see DESIGN.md §3).
    fn validate(&mut self, rewriting: &Rewriting) -> Option<bool> {
        if !rewriting.is_equivalent_to(self.query, self.views).ok()? {
            return Some(false);
        }

        // condition 3: subgoals
        for i in 0..rewriting.subgoals.len() {
            if rewriting.subgoals.len() == 1 {
                break;
            }
            let mut reduced = rewriting.clone();
            reduced.subgoals.remove(i);
            if check_safety(&reduced.as_extent_query()).is_err() {
                continue;
            }
            if reduced.is_equivalent_to(self.query, self.views).ok()? {
                return Some(false);
            }
        }
        // condition 3: residual comparisons
        for i in 0..rewriting.comparisons.len() {
            let mut reduced = rewriting.clone();
            reduced.comparisons.remove(i);
            if check_safety(&reduced.as_extent_query()).is_err() {
                continue;
            }
            if reduced.is_equivalent_to(self.query, self.views).ok()? {
                return Some(false);
            }
        }

        // condition 4: can any candidate absorb base atoms?
        if !self.base.is_empty() {
            for cand in self.candidates {
                // the candidate must cover only currently-base atoms,
                // at least one of them
                if !cand.covered.iter().all(|qi| self.base.contains(qi)) {
                    continue;
                }
                if cand.covered.is_empty() {
                    continue;
                }
                let reduced_base: BTreeSet<usize> =
                    self.base.difference(&cand.covered).copied().collect();
                let mut replaced = self.build(&reduced_base, &self.chosen);
                replaced
                    .subgoals
                    .push(Subgoal::View(cand.view_atom.clone()));
                if check_safety(&replaced.as_extent_query()).is_err() {
                    continue;
                }
                if replaced.is_equivalent_to(self.query, self.views).ok()? {
                    return Some(false);
                }
            }
        }

        Some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgc_query::parse_query;

    fn paper_views() -> ViewDefs {
        ViewDefs::new(vec![
            parse_query("lambda F. V1(F, N, Ty) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda F. V2(F, Tx) :- FamilyIntro(F, Tx)").unwrap(),
            parse_query("V3(F, N, Ty) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda Ty. V4(F, N, Ty) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda Ty. V5(F, N, Ty, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)")
                .unwrap(),
        ])
    }

    fn enumerate(src: &str) -> Enumeration {
        enumerate_rewritings(
            &parse_query(src).unwrap(),
            &paper_views(),
            RewriteOptions::default(),
        )
        .unwrap()
    }

    /// Example 2.3: Q(N,Tx) :- Family(F,N,Ty), FamilyIntro(F,Tx), Ty="gpcr"
    /// has (at least) the four rewritings Q1..Q4 from the paper.
    #[test]
    fn example_2_3_rewritings_found() {
        let e = enumerate("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"");
        assert!(e.exhaustive);
        let shown: Vec<String> = e.rewritings.iter().map(|r| r.to_string()).collect();
        let has = |needle: &[&str]| shown.iter().any(|s| needle.iter().all(|n| s.contains(n)));
        // Q1: V1 + V2 (with residual "gpcr" on V1's Ty output)
        assert!(has(&["V1(", "V2("]), "missing Q1 in {shown:#?}");
        // Q2: V3 + V2
        assert!(has(&["V3(", "V2("]), "missing Q2 in {shown:#?}");
        // Q3: V4("gpcr") + V2
        assert!(has(&["V4(", "\"gpcr\"", "V2("]), "missing Q3 in {shown:#?}");
        // Q4: V5("gpcr") alone
        assert!(has(&["V5("]), "missing Q4 in {shown:#?}");
        // Q4 must be a single-view rewriting
        let q4 = e
            .rewritings
            .iter()
            .find(|r| r.view_atoms().any(|v| v.view == "V5"))
            .unwrap();
        assert_eq!(q4.num_views(), 1);
        assert!(q4.is_total());
        assert_eq!(q4.num_uncovered(), 0);
    }

    /// Example 2.2: Q(N) :- Family(F,N,Ty), Ty="gpcr", FamilyIntro(F,Tx)
    #[test]
    fn example_2_2_rewritings_found() {
        let e = enumerate("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\", FamilyIntro(F, Tx)");
        let shown: Vec<String> = e.rewritings.iter().map(|r| r.to_string()).collect();
        // Q1 uses V1 and V2; Q2 uses V4("gpcr") and V2
        assert!(shown.iter().any(|s| s.contains("V1(") && s.contains("V2(")));
        assert!(shown
            .iter()
            .any(|s| s.contains("V4(") && s.contains("\"gpcr\"") && s.contains("V2(")));
        // V5("gpcr") also covers this query (projecting away Tx)
        assert!(shown.iter().any(|s| s.contains("V5(")));
        for r in &e.rewritings {
            assert!(r
                .is_equivalent_to(
                    &parse_query("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\", FamilyIntro(F, Tx)")
                        .unwrap(),
                    &paper_views()
                )
                .unwrap());
        }
    }

    #[test]
    fn all_rewritings_are_equivalent_and_minimal() {
        let q =
            parse_query("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"").unwrap();
        let e = enumerate("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"");
        for r in &e.rewritings {
            assert!(r.is_equivalent_to(&q, &paper_views()).unwrap(), "{r}");
            // no subgoal removable
            for i in 0..r.subgoals.len() {
                if r.subgoals.len() == 1 {
                    continue;
                }
                let mut reduced = r.clone();
                reduced.subgoals.remove(i);
                if check_safety(&reduced.as_extent_query()).is_err() {
                    continue;
                }
                assert!(
                    !reduced.is_equivalent_to(&q, &paper_views()).unwrap(),
                    "subgoal {i} of {r} is removable"
                );
            }
        }
    }

    #[test]
    fn no_views_means_single_all_base_rewriting() {
        let e = enumerate_rewritings(
            &parse_query("Q(N) :- Family(F, N, Ty)").unwrap(),
            &ViewDefs::default(),
            RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(e.rewritings.len(), 1);
        assert_eq!(e.rewritings[0].num_base(), 1);
        assert!(!e.rewritings[0].is_total());
    }

    #[test]
    fn totals_only_when_partial_disabled() {
        let e = enumerate_rewritings(
            &parse_query("Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx)").unwrap(),
            &paper_views(),
            RewriteOptions {
                include_partial: false,
                ..RewriteOptions::default()
            },
        )
        .unwrap();
        assert!(!e.rewritings.is_empty());
        assert!(e.rewritings.iter().all(Rewriting::is_total));
    }

    #[test]
    fn partial_rewriting_not_emitted_when_view_could_cover() {
        // With V2 available, leaving FamilyIntro as a base atom
        // violates condition 4 (V2 can replace it).
        let e = enumerate("Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx)");
        for r in &e.rewritings {
            for b in r.base_atoms() {
                assert_ne!(b.relation, "FamilyIntro", "condition 4 violated by {r}");
                assert_ne!(b.relation, "Family", "condition 4 violated by {r}");
            }
        }
    }

    #[test]
    fn unsatisfiable_query_reports_flag() {
        let e = enumerate("Q(N) :- Family(F, N, Ty), Ty = \"a\", Ty = \"b\"");
        assert!(e.unsatisfiable);
        assert!(e.rewritings.is_empty());
    }

    #[test]
    fn budget_cuts_off_search() {
        let e = enumerate_rewritings(
            &parse_query("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"")
                .unwrap(),
            &paper_views(),
            RewriteOptions {
                max_combinations: 2,
                ..RewriteOptions::default()
            },
        )
        .unwrap();
        assert!(!e.exhaustive);
    }

    #[test]
    fn stop_after_limits_results() {
        let e = enumerate_rewritings(
            &parse_query("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"")
                .unwrap(),
            &paper_views(),
            RewriteOptions {
                stop_after: 1,
                ..RewriteOptions::default()
            },
        )
        .unwrap();
        assert_eq!(e.rewritings.len(), 1);
        assert!(!e.exhaustive);
    }

    #[test]
    fn max_views_bounds_rewriting_size() {
        let e = enumerate_rewritings(
            &parse_query("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"")
                .unwrap(),
            &paper_views(),
            RewriteOptions {
                max_views: 1,
                include_partial: false,
                ..RewriteOptions::default()
            },
        )
        .unwrap();
        assert!(e.rewritings.iter().all(|r| r.num_views() <= 1));
        // Q4 (single V5) must still be there
        assert!(e
            .rewritings
            .iter()
            .any(|r| r.view_atoms().any(|v| v.view == "V5")));
    }
}

#[cfg(test)]
mod augmentation_tests {
    use super::*;
    use fgc_query::parse_query;

    fn family_key() -> fgc_query::Dependencies {
        fgc_query::Dependencies::none().with_key("Family", vec![0])
    }

    /// Projection-split views: no single view exposes both head
    /// variables, so a valid rewriting must join two views over the
    /// *same* query atom — sound only because `FID` is a key
    /// (re-joining the projections on a non-key could multiply rows).
    /// Exercises the unbound-head-var branch and the key chase.
    #[test]
    fn two_views_over_one_atom_recover_projected_vars() {
        let views = ViewDefs::new(vec![
            parse_query("lambda F. V6(F, N) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda F. V7(F, Ty) :- Family(F, N, Ty)").unwrap(),
        ])
        .with_dependencies(family_key());
        let q = parse_query("Q(N, Ty) :- Family(F, N, Ty)").unwrap();
        let e = enumerate_rewritings(&q, &views, RewriteOptions::default()).unwrap();
        let total = e
            .rewritings
            .iter()
            .find(|r| r.is_total())
            .unwrap_or_else(|| {
                panic!(
                    "no total rewriting in {:?}",
                    e.rewritings
                        .iter()
                        .map(|r| r.to_string())
                        .collect::<Vec<_>>()
                )
            });
        assert_eq!(total.num_views(), 2);
        let names: std::collections::BTreeSet<&str> =
            total.view_atoms().map(|v| v.view.as_str()).collect();
        assert_eq!(names, std::collections::BTreeSet::from(["V6", "V7"]));
    }

    /// Without the key declared, the projection-split rewriting is
    /// *invalid* (plain CQ semantics) and must not be emitted.
    #[test]
    fn projection_split_requires_the_key() {
        let views = ViewDefs::new(vec![
            parse_query("lambda F. V6(F, N) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda F. V7(F, Ty) :- Family(F, N, Ty)").unwrap(),
        ]);
        let q = parse_query("Q(N, Ty) :- Family(F, N, Ty)").unwrap();
        let e = enumerate_rewritings(&q, &views, RewriteOptions::default()).unwrap();
        assert!(
            e.rewritings.iter().all(|r| !r.is_total()),
            "projection-split rewriting accepted without the key: {:?}",
            e.rewritings
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
        );
    }

    /// A comparison over a projected-away variable also triggers
    /// augmentation: the variable must be re-exposed by a second view.
    #[test]
    fn comparison_variable_recovered_by_second_view() {
        let views = ViewDefs::new(vec![
            parse_query("lambda F. V6(F, N) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda F. V7(F, Ty) :- Family(F, N, Ty)").unwrap(),
        ])
        .with_dependencies(family_key());
        let q = parse_query("Q(N) :- Family(F, N, Ty), Ty > \"a\"").unwrap();
        let e = enumerate_rewritings(&q, &views, RewriteOptions::default()).unwrap();
        assert!(e.rewritings.iter().any(|r| {
            r.is_total() && r.comparisons.len() == 1 && r.view_atoms().any(|v| v.view == "V7")
        }));
    }

    /// A view that self-joins the base relation can still cover a
    /// self-join query (two cover mappings of a two-atom body).
    #[test]
    fn self_join_view_covers_self_join_query() {
        let views = ViewDefs::new(vec![parse_query(
            "lambda T. VPair(A, B, T) :- Family(A, N1, T), Family(B, N2, T)",
        )
        .unwrap()]);
        let q = parse_query("Q(A, B) :- Family(A, N1, T), Family(B, N2, T), T = \"gpcr\"").unwrap();
        let e = enumerate_rewritings(&q, &views, RewriteOptions::default()).unwrap();
        let total = e.rewritings.iter().find(|r| r.is_total());
        assert!(
            total.is_some(),
            "expected VPair rewriting in {:?}",
            e.rewritings
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
        );
        let total = total.unwrap();
        let atom = total.view_atoms().next().unwrap();
        assert_eq!(atom.view, "VPair");
        assert_eq!(atom.absorbed_params(), 1); // T = "gpcr" absorbed
    }

    /// A view over a different relation can never participate.
    #[test]
    fn irrelevant_views_ignored() {
        let views = ViewDefs::new(vec![parse_query(
            "lambda F. V2(F, Tx) :- FamilyIntro(F, Tx)",
        )
        .unwrap()]);
        let q = parse_query("Q(N) :- Family(F, N, Ty)").unwrap();
        let e = enumerate_rewritings(&q, &views, RewriteOptions::default()).unwrap();
        assert_eq!(e.rewritings.len(), 1);
        assert_eq!(e.rewritings[0].num_base(), 1);
    }
}
