//! Candidate generation: which views can cover which query subgoals.
//!
//! For each view `V` we enumerate *cover mappings* ψ from the body of
//! `V` into the atoms of the (equality-normalized) query. The image
//! of ψ is the set of query atoms the view occurrence covers; the
//! instantiated view atom is `V(ψ(Y))`.
//!
//! λ-absorption (Example 2.2) falls out naturally: the query is
//! normalized first, so a selection `Ty = "gpcr"` appears as the
//! constant `"gpcr"` inside the query atom; when ψ maps the view's
//! parameter variable onto that constant, the parameter position of
//! the view atom carries the constant — i.e. `V4(F, N, "gpcr")`,
//! the paper's `V4(F,N,Ty)("gpcr")`.
//!
//! This is a generate-liberally/validate-later design (the validity
//! oracle is expansion-equivalence, Def. 2.2): mappings that drop a
//! needed existential variable produce candidates that simply fail
//! validation. For the minimal rewritings of CQs this candidate space
//! is the same one the bucket/MiniCon algorithms search.

use crate::error::Result;
use crate::rewriting::{ViewAtom, ViewDefs};
use fgc_query::ast::{ConjunctiveQuery, Term};
use fgc_query::subst::{apply_term, Substitution};
use std::collections::BTreeSet;

/// A candidate use of one view, covering a set of query atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The instantiated view atom.
    pub view_atom: ViewAtom,
    /// Indices of the query atoms covered by this occurrence.
    pub covered: BTreeSet<usize>,
}

/// Enumerate all cover mappings of every view into the query.
/// The query must already be normalized (no `=` comparisons); pass
/// the output of [`fgc_query::normalize`].
pub fn candidates(query: &ConjunctiveQuery, views: &ViewDefs) -> Result<Vec<Candidate>> {
    let mut out: Vec<Candidate> = Vec::new();
    for def in views.iter() {
        let param_positions = views.param_positions(&def.name)?;
        // freshen so view vars can't collide with query vars
        let fresh = def.freshen("_v");
        let mut assignment = Substitution::new();
        let mut image = Vec::with_capacity(fresh.atoms.len());
        map_atoms(
            query,
            &fresh,
            0,
            &mut assignment,
            &mut image,
            &param_positions,
            &mut out,
        );
    }
    // dedup identical candidates (same view atom + same cover)
    let mut seen = BTreeSet::new();
    out.retain(|c| {
        let key = (format!("{}", c.view_atom), c.covered.clone());
        seen.insert(key)
    });
    Ok(out)
}

/// Backtracking over the view's body atoms.
fn map_atoms(
    query: &ConjunctiveQuery,
    view: &ConjunctiveQuery,
    idx: usize,
    assignment: &mut Substitution,
    image: &mut Vec<usize>,
    param_positions: &[usize],
    out: &mut Vec<Candidate>,
) {
    if idx == view.atoms.len() {
        // all body atoms mapped: emit candidate
        let args: Vec<Term> = view
            .head
            .iter()
            .map(|t| apply_term(assignment, t))
            .collect();
        out.push(Candidate {
            view_atom: ViewAtom {
                view: view.name.clone(),
                args,
                param_positions: param_positions.to_vec(),
            },
            covered: image.iter().copied().collect(),
        });
        return;
    }
    let body_atom = &view.atoms[idx];
    for (qi, q_atom) in query.atoms.iter().enumerate() {
        if q_atom.relation != body_atom.relation || q_atom.terms.len() != body_atom.terms.len() {
            continue;
        }
        // try extending the assignment so body_atom ↦ q_atom
        let mut added: Vec<String> = Vec::new();
        let mut ok = true;
        for (vt, qt) in body_atom.terms.iter().zip(&q_atom.terms) {
            match vt {
                Term::Const(c) => {
                    // view constant must match the query term exactly
                    if qt.as_const() != Some(c) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match assignment.get(v.as_str()) {
                    Some(existing) => {
                        if existing != qt {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        assignment.insert(v.clone(), qt.clone());
                        added.push(v.clone());
                    }
                },
            }
        }
        if ok {
            image.push(qi);
            map_atoms(
                query,
                view,
                idx + 1,
                assignment,
                image,
                param_positions,
                out,
            );
            image.pop();
        }
        for v in added {
            assignment.remove(&v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgc_query::{normalize, parse_query, Normalized};

    fn views() -> ViewDefs {
        ViewDefs::new(vec![
            parse_query("lambda F. V1(F, N, Ty) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda F. V2(F, Tx) :- FamilyIntro(F, Tx)").unwrap(),
            parse_query("V3(F, N, Ty) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda Ty. V4(F, N, Ty) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda Ty. V5(F, N, Ty, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)")
                .unwrap(),
        ])
    }

    fn normalized(src: &str) -> ConjunctiveQuery {
        match normalize(&parse_query(src).unwrap()) {
            Normalized::Query(q) => q,
            Normalized::Unsatisfiable => panic!("unsatisfiable"),
        }
    }

    #[test]
    fn single_atom_query_gets_family_views() {
        let q = normalized("Q(N) :- Family(F, N, Ty)");
        let cands = candidates(&q, &views()).unwrap();
        let names: BTreeSet<&str> = cands.iter().map(|c| c.view_atom.view.as_str()).collect();
        // V1, V3, V4 cover Family; V5 needs FamilyIntro too, and its
        // body cannot map (no FamilyIntro atom in Q)
        assert_eq!(names, BTreeSet::from(["V1", "V3", "V4"]));
    }

    #[test]
    fn lambda_absorption_on_normalized_selection() {
        // after normalization the selection constant is inline
        let q = normalized("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\"");
        let cands = candidates(&q, &views()).unwrap();
        let v4 = cands
            .iter()
            .find(|c| c.view_atom.view == "V4")
            .expect("V4 candidate");
        // V4's λ-param Ty sits at position 2 and was absorbed
        assert_eq!(v4.view_atom.args[2], Term::val("gpcr"));
        assert_eq!(v4.view_atom.absorbed_params(), 1);
    }

    #[test]
    fn multi_atom_view_covers_both_atoms() {
        let q = normalized("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"");
        let cands = candidates(&q, &views()).unwrap();
        let v5 = cands
            .iter()
            .find(|c| c.view_atom.view == "V5")
            .expect("V5 candidate");
        assert_eq!(v5.covered, BTreeSet::from([0, 1]));
        assert_eq!(v5.view_atom.args[2], Term::val("gpcr"));
    }

    #[test]
    fn view_with_unmatchable_constant_is_skipped() {
        let mut vd = views();
        // add a view hard-wired to enzyme families
        let enzyme = parse_query("VE(F, N) :- Family(F, N, \"enzyme\")").unwrap();
        vd = ViewDefs::new(vd.iter().cloned().chain([enzyme]));
        let q = normalized("Q(N) :- Family(F, N, \"gpcr\")");
        let cands = candidates(&q, &vd).unwrap();
        assert!(cands.iter().all(|c| c.view_atom.view != "VE"));
    }

    #[test]
    fn constant_in_query_binds_view_variable() {
        let q = normalized("Q(N) :- Family(\"11\", N, Ty)");
        let cands = candidates(&q, &views()).unwrap();
        let v1 = cands.iter().find(|c| c.view_atom.view == "V1").unwrap();
        assert_eq!(v1.view_atom.args[0], Term::val("11"));
        // λ-param F absorbed with "11"
        assert_eq!(v1.view_atom.absorbed_params(), 1);
    }

    #[test]
    fn self_join_produces_multiple_mappings() {
        let q = normalized("Q(A, B) :- Family(A, N1, T), Family(B, N2, T)");
        let cands = candidates(&q, &views()).unwrap();
        let v1_covers: Vec<&BTreeSet<usize>> = cands
            .iter()
            .filter(|c| c.view_atom.view == "V1")
            .map(|c| &c.covered)
            .collect();
        // V1 can map its single Family atom to either query atom
        assert_eq!(v1_covers.len(), 2);
    }

    #[test]
    fn no_views_no_candidates() {
        let q = normalized("Q(N) :- Family(F, N, Ty)");
        let cands = candidates(&q, &ViewDefs::default()).unwrap();
        assert!(cands.is_empty());
    }

    #[test]
    fn duplicate_mappings_are_deduplicated() {
        // V5 maps (Family,FamilyIntro); on a query with one of each
        // there is exactly one mapping
        let q = normalized("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)");
        let cands = candidates(&q, &views()).unwrap();
        let v5_count = cands.iter().filter(|c| c.view_atom.view == "V5").count();
        assert_eq!(v5_count, 1);
    }
}
