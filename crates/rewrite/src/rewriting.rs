//! Rewritings of a query using views — Definition 2.2 of the paper.
//!
//! > "The query Q′ is a rewriting of Q using V if: the subgoals of Q′
//! > are either relation names in R, views in V, or comparison
//! > predicates; Q′ is equivalent to Q; no subgoal of Q′ can be
//! > removed and obtain an equivalent query; and no subset of
//! > subgoals of Q′ can be replaced by a view in V and obtain an
//! > equivalent query. A rewriting is total if its subgoals contain
//! > only views and comparison predicates; otherwise ... partial."

use crate::error::{Result, RewriteError};
use fgc_query::ast::{Atom, Comparison, ConjunctiveQuery, Term};
use fgc_query::subst::{unify_terms, Substitution};
use std::collections::BTreeMap;
use std::fmt;

/// A view occurrence in a rewriting: `V(args)` — where `args` aligns
/// with the view's head `Y`. Because Def. 2.1 requires `X ⊆ Y`, the
/// λ-parameter terms are simply the args at the parameter positions:
/// a constant there means the parameter was *absorbed* (e.g.
/// `V4(F, N, Ty)("gpcr")` appears as `V4(F, N, "gpcr")` with
/// parameter position 2).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewAtom {
    /// View name.
    pub view: String,
    /// Terms aligned with the view head.
    pub args: Vec<Term>,
    /// Positions of the view's λ-parameters within `args`.
    pub param_positions: Vec<usize>,
}

impl ViewAtom {
    /// The λ-parameter terms (`args` at the parameter positions).
    pub fn param_terms(&self) -> Vec<&Term> {
        self.param_positions
            .iter()
            .map(|&i| &self.args[i])
            .collect()
    }

    /// Number of parameters already bound to constants (absorbed
    /// comparison predicates, as in Example 2.2's `Q2`).
    pub fn absorbed_params(&self) -> usize {
        self.param_terms().iter().filter(|t| !t.is_var()).count()
    }
}

impl fmt::Display for ViewAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.view)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// A subgoal of a rewriting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subgoal {
    /// A view occurrence.
    View(ViewAtom),
    /// A base-relation atom (makes the rewriting *partial*).
    Base(Atom),
}

impl fmt::Display for Subgoal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subgoal::View(v) => write!(f, "{v}"),
            Subgoal::Base(a) => write!(f, "{a}"),
        }
    }
}

/// A (candidate) rewriting of a query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rewriting {
    /// Head predicate name (inherited from the query).
    pub name: String,
    /// Head terms.
    pub head: Vec<Term>,
    /// Subgoals: views and base atoms.
    pub subgoals: Vec<Subgoal>,
    /// Residual comparison predicates.
    pub comparisons: Vec<Comparison>,
}

impl Rewriting {
    /// Is the rewriting total (no base-relation subgoal)?
    pub fn is_total(&self) -> bool {
        self.subgoals.iter().all(|s| matches!(s, Subgoal::View(_)))
    }

    /// Number of view subgoals.
    pub fn num_views(&self) -> usize {
        self.subgoals
            .iter()
            .filter(|s| matches!(s, Subgoal::View(_)))
            .count()
    }

    /// Number of base-relation subgoals.
    pub fn num_base(&self) -> usize {
        self.subgoals.len() - self.num_views()
    }

    /// The paper's "uncovered terms": subgoals "captured by directly
    /// accessing base relations or appearing as comparison
    /// predicates". Constants sitting in a *non-parameter* view-arg
    /// position count as residual comparison predicates (the
    /// normalized form of Example 2.2's `Q1`, where `Ty = "gpcr"`
    /// survives next to `V1`).
    pub fn num_uncovered(&self) -> usize {
        let residual_constants: usize = self
            .subgoals
            .iter()
            .map(|s| match s {
                Subgoal::View(v) => v
                    .args
                    .iter()
                    .enumerate()
                    .filter(|(i, t)| !t.is_var() && !v.param_positions.contains(i))
                    .count(),
                Subgoal::Base(_) => 0,
            })
            .sum();
        self.num_base() + self.comparisons.len() + residual_constants
    }

    /// View subgoals.
    pub fn view_atoms(&self) -> impl Iterator<Item = &ViewAtom> {
        self.subgoals.iter().filter_map(|s| match s {
            Subgoal::View(v) => Some(v),
            Subgoal::Base(_) => None,
        })
    }

    /// Base subgoals.
    pub fn base_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.subgoals.iter().filter_map(|s| match s {
            Subgoal::Base(a) => Some(a),
            Subgoal::View(_) => None,
        })
    }

    /// The rewriting as a plain conjunctive query over *view extents*:
    /// every view subgoal becomes an atom over a relation named after
    /// the view. Evaluating this against materialized extents gives
    /// the rewriting's output and bindings.
    pub fn as_extent_query(&self) -> ConjunctiveQuery {
        ConjunctiveQuery {
            name: self.name.clone(),
            params: Vec::new(),
            head: self.head.clone(),
            atoms: self
                .subgoals
                .iter()
                .map(|s| match s {
                    Subgoal::View(v) => Atom::new(v.view.clone(), v.args.clone()),
                    Subgoal::Base(a) => a.clone(),
                })
                .collect(),
            comparisons: self.comparisons.clone(),
        }
    }

    /// The *expansion* of the rewriting: each view subgoal is replaced
    /// by the view's body (variables freshened per occurrence, head
    /// unified with the subgoal's args). Equivalence of the expansion
    /// with the original query is Def. 2.2's condition 2.
    pub fn expand(&self, views: &ViewDefs) -> Result<ConjunctiveQuery> {
        let mut atoms: Vec<Atom> = Vec::new();
        let mut comparisons: Vec<Comparison> = self.comparisons.clone();
        for (occurrence, s) in self.subgoals.iter().enumerate() {
            match s {
                Subgoal::Base(a) => atoms.push(a.clone()),
                Subgoal::View(v) => {
                    let def = views.get(&v.view)?;
                    let fresh = def.freshen(&format!("_x{occurrence}"));
                    if fresh.head.len() != v.args.len() {
                        return Err(RewriteError::ViewArity {
                            view: v.view.clone(),
                            expected: fresh.head.len(),
                            actual: v.args.len(),
                        });
                    }
                    // unify view head with subgoal args
                    let mut subst = Substitution::new();
                    for (ht, at) in fresh.head.iter().zip(&v.args) {
                        if !unify_terms(&mut subst, ht, at) {
                            return Err(RewriteError::Inconsistent {
                                view: v.view.clone(),
                                detail: format!("cannot unify head term {ht} with arg {at}"),
                            });
                        }
                    }
                    // substitution may map rewriting vars; apply to
                    // everything accumulated so far *and* the body.
                    let body = fgc_query::subst::apply_query(&subst, &fresh);
                    atoms = atoms
                        .iter()
                        .map(|a| fgc_query::subst::apply_atom(&subst, a))
                        .collect();
                    comparisons = comparisons
                        .iter()
                        .map(|c| fgc_query::subst::apply_comparison(&subst, c))
                        .collect();
                    atoms.extend(body.atoms);
                    comparisons.extend(body.comparisons);
                }
            }
        }
        // the substitutions above may also have touched the head
        // indirectly; rebuild by re-unifying: simplest is to apply the
        // same per-occurrence substitutions as we went. We saved work
        // by keeping head variables disjoint from freshened view
        // variables: unification binds *fresh* vars to rewriting
        // terms, never the reverse, except when two view occurrences
        // share a rewriting variable — which apply_query handled.
        Ok(ConjunctiveQuery {
            name: self.name.clone(),
            params: Vec::new(),
            head: self.head.clone(),
            atoms,
            comparisons,
        })
    }

    /// Check Def. 2.2 condition 2: the expansion is equivalent to `q`
    /// (over databases satisfying the view set's key dependencies).
    pub fn is_equivalent_to(&self, q: &ConjunctiveQuery, views: &ViewDefs) -> Result<bool> {
        Ok(fgc_query::equivalent_under(
            &self.expand(views)?,
            q,
            views.dependencies(),
        ))
    }

    /// Canonical form for deduplication: subgoals and comparisons
    /// sorted, variables renamed in order of first appearance.
    pub fn canonical_key(&self) -> String {
        let mut sorted = self.clone();
        sorted.subgoals.sort();
        sorted.comparisons.sort();
        let mut renaming: BTreeMap<String, String> = BTreeMap::new();
        let mut fresh = 0usize;
        let mut rename = |t: &Term| -> Term {
            match t {
                Term::Var(v) => {
                    let name = renaming.entry(v.clone()).or_insert_with(|| {
                        let n = format!("v{fresh}");
                        fresh += 1;
                        n
                    });
                    Term::Var(name.clone())
                }
                c => c.clone(),
            }
        };
        let mut parts: Vec<String> = Vec::new();
        parts.push(
            sorted
                .head
                .iter()
                .map(|t| rename(t).to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        for s in &sorted.subgoals {
            match s {
                Subgoal::View(v) => parts.push(format!(
                    "{}({})",
                    v.view,
                    v.args
                        .iter()
                        .map(|t| rename(t).to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )),
                Subgoal::Base(a) => parts.push(format!(
                    "@{}({})",
                    a.relation,
                    a.terms
                        .iter()
                        .map(|t| rename(t).to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )),
            }
        }
        for c in &sorted.comparisons {
            parts.push(format!("{} {} {}", rename(&c.left), c.op, rename(&c.right)));
        }
        parts.join(" & ")
    }
}

impl fmt::Display for Rewriting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(") :- ")?;
        let mut first = true;
        for s in &self.subgoals {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{s}")?;
        }
        for c in &self.comparisons {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// The view definitions available for rewriting (name → λ-query),
/// together with the key dependencies under which rewriting
/// equivalence is judged (rewritings that re-join projections of one
/// relation are only valid when its key is declared — see
/// `fgc_query::chase`).
#[derive(Debug, Clone, Default)]
pub struct ViewDefs {
    defs: BTreeMap<String, ConjunctiveQuery>,
    deps: fgc_query::Dependencies,
}

impl ViewDefs {
    /// Build from an iterator of view definitions (λ-queries). The
    /// head predicate name is the view name.
    pub fn new<I: IntoIterator<Item = ConjunctiveQuery>>(defs: I) -> Self {
        ViewDefs {
            defs: defs.into_iter().map(|q| (q.name.clone(), q)).collect(),
            deps: fgc_query::Dependencies::none(),
        }
    }

    /// Attach key dependencies (builder style). Equivalence checks of
    /// rewritings then hold over key-respecting databases.
    pub fn with_dependencies(mut self, deps: fgc_query::Dependencies) -> Self {
        self.deps = deps;
        self
    }

    /// The key dependencies in force.
    pub fn dependencies(&self) -> &fgc_query::Dependencies {
        &self.deps
    }

    /// Look up a view definition.
    pub fn get(&self, name: &str) -> Result<&ConjunctiveQuery> {
        self.defs
            .get(name)
            .ok_or_else(|| RewriteError::UnknownView(name.to_string()))
    }

    /// All definitions, name-sorted.
    pub fn iter(&self) -> impl Iterator<Item = &ConjunctiveQuery> {
        self.defs.values()
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Parameter positions in the head of a view (Def. 2.1's X ⊆ Y).
    pub fn param_positions(&self, name: &str) -> Result<Vec<usize>> {
        let def = self.get(name)?;
        def.params
            .iter()
            .map(|p| {
                def.head
                    .iter()
                    .position(|t| t.as_var() == Some(p.as_str()))
                    .ok_or_else(|| RewriteError::ParamNotInHead {
                        view: name.to_string(),
                        parameter: p.clone(),
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgc_query::parse_query;

    fn views() -> ViewDefs {
        ViewDefs::new(vec![
            parse_query("lambda F. V1(F, N, Ty) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda F. V2(F, Tx) :- FamilyIntro(F, Tx)").unwrap(),
            parse_query("V3(F, N, Ty) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda Ty. V4(F, N, Ty) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda Ty. V5(F, N, Ty, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)")
                .unwrap(),
        ])
    }

    fn q4_rewriting() -> Rewriting {
        // Q4(N, Tx) :- V5(F, N, "gpcr", Tx)
        Rewriting {
            name: "Q4".into(),
            head: vec![Term::var("N"), Term::var("Tx")],
            subgoals: vec![Subgoal::View(ViewAtom {
                view: "V5".into(),
                args: vec![
                    Term::var("F"),
                    Term::var("N"),
                    Term::val("gpcr"),
                    Term::var("Tx"),
                ],
                param_positions: vec![2],
            })],
            comparisons: vec![],
        }
    }

    #[test]
    fn totality_and_counts() {
        let r = q4_rewriting();
        assert!(r.is_total());
        assert_eq!(r.num_views(), 1);
        assert_eq!(r.num_base(), 0);
        assert_eq!(r.num_uncovered(), 0); // "gpcr" sits at a λ position
        assert_eq!(r.view_atoms().next().unwrap().absorbed_params(), 1);
    }

    #[test]
    fn constant_at_non_param_position_counts_uncovered() {
        // V1(F, N, "gpcr"): Ty is not a λ-param of V1
        let r = Rewriting {
            name: "Q1".into(),
            head: vec![Term::var("N")],
            subgoals: vec![Subgoal::View(ViewAtom {
                view: "V1".into(),
                args: vec![Term::var("F"), Term::var("N"), Term::val("gpcr")],
                param_positions: vec![0],
            })],
            comparisons: vec![],
        };
        assert_eq!(r.num_uncovered(), 1);
    }

    #[test]
    fn expansion_of_q4_matches_paper() {
        let r = q4_rewriting();
        let exp = r.expand(&views()).unwrap();
        let original =
            parse_query("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"").unwrap();
        assert!(
            fgc_query::equivalent(&exp, &original),
            "expansion was {exp}"
        );
        assert!(r.is_equivalent_to(&original, &views()).unwrap());
    }

    #[test]
    fn expansion_with_two_views_example_2_3_q1() {
        // Q1(N, Tx) :- V1(F, N, Ty), V2(F, Tx), Ty = "gpcr"
        let r = Rewriting {
            name: "Q1".into(),
            head: vec![Term::var("N"), Term::var("Tx")],
            subgoals: vec![
                Subgoal::View(ViewAtom {
                    view: "V1".into(),
                    args: vec![Term::var("F"), Term::var("N"), Term::var("Ty")],
                    param_positions: vec![0],
                }),
                Subgoal::View(ViewAtom {
                    view: "V2".into(),
                    args: vec![Term::var("F"), Term::var("Tx")],
                    param_positions: vec![0],
                }),
            ],
            comparisons: vec![Comparison::new(
                Term::var("Ty"),
                fgc_query::CompOp::Eq,
                Term::val("gpcr"),
            )],
        };
        assert!(r.is_total());
        assert_eq!(r.num_uncovered(), 1); // the residual comparison
        let original =
            parse_query("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"").unwrap();
        assert!(r.is_equivalent_to(&original, &views()).unwrap());
    }

    #[test]
    fn partial_rewriting_with_base_atom() {
        let r = Rewriting {
            name: "Qp".into(),
            head: vec![Term::var("N")],
            subgoals: vec![
                Subgoal::View(ViewAtom {
                    view: "V2".into(),
                    args: vec![Term::var("F"), Term::var("Tx")],
                    param_positions: vec![0],
                }),
                Subgoal::Base(Atom::new(
                    "Family",
                    vec![Term::var("F"), Term::var("N"), Term::val("gpcr")],
                )),
            ],
            comparisons: vec![],
        };
        assert!(!r.is_total());
        assert_eq!(r.num_base(), 1);
        let original =
            parse_query("Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"").unwrap();
        assert!(r.is_equivalent_to(&original, &views()).unwrap());
    }

    #[test]
    fn non_equivalent_rewriting_detected() {
        // V2 alone loses the Family selection
        let r = Rewriting {
            name: "Qbad".into(),
            head: vec![Term::var("Tx")],
            subgoals: vec![Subgoal::View(ViewAtom {
                view: "V2".into(),
                args: vec![Term::var("F"), Term::var("Tx")],
                param_positions: vec![0],
            })],
            comparisons: vec![],
        };
        let original =
            parse_query("Q(Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"").unwrap();
        assert!(!r.is_equivalent_to(&original, &views()).unwrap());
    }

    #[test]
    fn as_extent_query_uses_view_names_as_relations() {
        let q = q4_rewriting().as_extent_query();
        assert_eq!(q.atoms[0].relation, "V5");
        assert_eq!(q.atoms[0].terms.len(), 4);
    }

    #[test]
    fn canonical_key_identifies_renamed_duplicates() {
        let a = q4_rewriting();
        let mut b = q4_rewriting();
        // rename F -> G, N -> M consistently
        b.head = vec![Term::var("M"), Term::var("U")];
        if let Subgoal::View(v) = &mut b.subgoals[0] {
            v.args = vec![
                Term::var("G"),
                Term::var("M"),
                Term::val("gpcr"),
                Term::var("U"),
            ];
        }
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn unknown_view_in_expansion_errors() {
        let mut r = q4_rewriting();
        if let Subgoal::View(v) = &mut r.subgoals[0] {
            v.view = "V99".into();
        }
        assert!(matches!(
            r.expand(&views()).unwrap_err(),
            RewriteError::UnknownView(_)
        ));
    }

    #[test]
    fn view_defs_param_positions() {
        let vd = views();
        assert_eq!(vd.param_positions("V1").unwrap(), vec![0]);
        assert_eq!(vd.param_positions("V4").unwrap(), vec![2]);
        assert_eq!(vd.param_positions("V3").unwrap(), Vec::<usize>::new());
    }
}
