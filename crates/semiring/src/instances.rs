//! Stock semiring instances from the provenance literature
//! (Green, Karvounarakis, Tannen — "Provenance semirings", PODS 2007,
//! the paper's reference \[5\]).

use crate::traits::{CommutativeSemiring, IdempotentPlus};
use std::collections::BTreeSet;
use std::fmt;

// ---------------------------------------------------------------------
// Natural numbers (bag semantics)
// ---------------------------------------------------------------------

/// `(ℕ, +, ·, 0, 1)` — counts how many derivations a tuple has
/// (bag semantics). Saturating arithmetic keeps the laws exact in the
/// presence of overflow at the extremes used by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Natural(pub u64);

impl CommutativeSemiring for Natural {
    fn zero() -> Self {
        Natural(0)
    }
    fn one() -> Self {
        Natural(1)
    }
    fn plus(&self, other: &Self) -> Self {
        Natural(self.0.saturating_add(other.0))
    }
    fn times(&self, other: &Self) -> Self {
        Natural(self.0.saturating_mul(other.0))
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

// ---------------------------------------------------------------------
// Booleans (set semantics)
// ---------------------------------------------------------------------

/// `(𝔹, ∨, ∧, false, true)` — set semantics / tuple presence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bool(pub bool);

impl CommutativeSemiring for Bool {
    fn zero() -> Self {
        Bool(false)
    }
    fn one() -> Self {
        Bool(true)
    }
    fn plus(&self, other: &Self) -> Self {
        Bool(self.0 || other.0)
    }
    fn times(&self, other: &Self) -> Self {
        Bool(self.0 && other.0)
    }
}

impl IdempotentPlus for Bool {}

// ---------------------------------------------------------------------
// Tropical (min, +) — cost of the cheapest derivation
// ---------------------------------------------------------------------

/// `(ℕ ∪ {∞}, min, +, ∞, 0)` — the cost semiring. Used by the
/// preference machinery to reason about "cheapest" citations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tropical {
    /// No derivation (additive neutral).
    Infinity,
    /// A derivation of the given cost.
    Cost(u64),
}

impl CommutativeSemiring for Tropical {
    fn zero() -> Self {
        Tropical::Infinity
    }
    fn one() -> Self {
        Tropical::Cost(0)
    }
    fn plus(&self, other: &Self) -> Self {
        match (self, other) {
            (Tropical::Infinity, x) | (x, Tropical::Infinity) => *x,
            (Tropical::Cost(a), Tropical::Cost(b)) => Tropical::Cost(*a.min(b)),
        }
    }
    fn times(&self, other: &Self) -> Self {
        match (self, other) {
            (Tropical::Infinity, _) | (_, Tropical::Infinity) => Tropical::Infinity,
            (Tropical::Cost(a), Tropical::Cost(b)) => Tropical::Cost(a.saturating_add(*b)),
        }
    }
}

impl IdempotentPlus for Tropical {}

// ---------------------------------------------------------------------
// Lineage (which-provenance)
// ---------------------------------------------------------------------

/// Lineage: the set of base tokens involved in *some* derivation.
/// `+` and `·` are both union (with `0` as the absent annotation).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lineage<T: Ord + Clone + fmt::Debug> {
    /// Additive neutral: no derivation at all.
    Empty,
    /// The set of tokens touched by the derivations.
    Tokens(BTreeSet<T>),
}

impl<T: Ord + Clone + fmt::Debug> Lineage<T> {
    /// A single-token lineage.
    pub fn token(t: T) -> Self {
        Lineage::Tokens(BTreeSet::from([t]))
    }

    /// The token set (empty for `Empty`).
    pub fn tokens(&self) -> BTreeSet<T> {
        match self {
            Lineage::Empty => BTreeSet::new(),
            Lineage::Tokens(s) => s.clone(),
        }
    }
}

impl<T: Ord + Clone + fmt::Debug> CommutativeSemiring for Lineage<T> {
    fn zero() -> Self {
        Lineage::Empty
    }
    fn one() -> Self {
        Lineage::Tokens(BTreeSet::new())
    }
    fn plus(&self, other: &Self) -> Self {
        match (self, other) {
            (Lineage::Empty, x) | (x, Lineage::Empty) => x.clone(),
            (Lineage::Tokens(a), Lineage::Tokens(b)) => {
                Lineage::Tokens(a.union(b).cloned().collect())
            }
        }
    }
    fn times(&self, other: &Self) -> Self {
        match (self, other) {
            (Lineage::Empty, _) | (_, Lineage::Empty) => Lineage::Empty,
            (Lineage::Tokens(a), Lineage::Tokens(b)) => {
                Lineage::Tokens(a.union(b).cloned().collect())
            }
        }
    }
}

impl<T: Ord + Clone + fmt::Debug> IdempotentPlus for Lineage<T> {}

// ---------------------------------------------------------------------
// Why-provenance (witness sets)
// ---------------------------------------------------------------------

/// Why-provenance: a set of witnesses, each witness being the set of
/// tokens jointly used by one derivation. `+` is union of witness
/// sets, `·` is pairwise union of witnesses.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Why<T: Ord + Clone + fmt::Debug> {
    /// The witness sets. Empty set of witnesses = additive neutral;
    /// the singleton `{∅}` = multiplicative neutral.
    pub witnesses: BTreeSet<BTreeSet<T>>,
}

impl<T: Ord + Clone + fmt::Debug> Why<T> {
    /// Provenance of a base tuple: one witness containing one token.
    pub fn token(t: T) -> Self {
        Why {
            witnesses: BTreeSet::from([BTreeSet::from([t])]),
        }
    }

    /// Minimize to the *minimal witness basis*: drop every witness
    /// that is a strict superset of another witness.
    pub fn minimal(&self) -> Self {
        let keep: BTreeSet<BTreeSet<T>> = self
            .witnesses
            .iter()
            .filter(|w| {
                !self
                    .witnesses
                    .iter()
                    .any(|other| other != *w && other.is_subset(w))
            })
            .cloned()
            .collect();
        Why { witnesses: keep }
    }
}

impl<T: Ord + Clone + fmt::Debug> CommutativeSemiring for Why<T> {
    fn zero() -> Self {
        Why {
            witnesses: BTreeSet::new(),
        }
    }
    fn one() -> Self {
        Why {
            witnesses: BTreeSet::from([BTreeSet::new()]),
        }
    }
    fn plus(&self, other: &Self) -> Self {
        Why {
            witnesses: self.witnesses.union(&other.witnesses).cloned().collect(),
        }
    }
    fn times(&self, other: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.witnesses {
            for b in &other.witnesses {
                out.insert(a.union(b).cloned().collect());
            }
        }
        Why { witnesses: out }
    }
}

impl<T: Ord + Clone + fmt::Debug> IdempotentPlus for Why<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::laws;

    #[test]
    fn natural_laws() {
        let samples = [Natural(0), Natural(1), Natural(2), Natural(17)];
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    assert_eq!(laws::check_axioms(a, b, c), None);
                }
            }
        }
    }

    #[test]
    fn bool_laws_and_idempotence() {
        let samples = [Bool(false), Bool(true)];
        for a in &samples {
            assert!(laws::check_idempotent(a));
            for b in &samples {
                for c in &samples {
                    assert_eq!(laws::check_axioms(a, b, c), None);
                }
            }
        }
    }

    #[test]
    fn tropical_laws() {
        let samples = [
            Tropical::Infinity,
            Tropical::Cost(0),
            Tropical::Cost(3),
            Tropical::Cost(9),
        ];
        for a in &samples {
            assert!(laws::check_idempotent(a));
            for b in &samples {
                for c in &samples {
                    assert_eq!(laws::check_axioms(a, b, c), None);
                }
            }
        }
    }

    #[test]
    fn lineage_collects_all_tokens() {
        let a = Lineage::token("t1");
        let b = Lineage::token("t2");
        let joined = a.times(&b);
        assert_eq!(joined.tokens(), BTreeSet::from(["t1", "t2"]));
        // plus also unions, but zero stays absorbing for times
        assert_eq!(Lineage::<&str>::zero().times(&a), Lineage::zero());
        assert_eq!(Lineage::<&str>::zero().plus(&a), a);
    }

    #[test]
    fn lineage_laws() {
        let samples = [
            Lineage::Empty,
            Lineage::one(),
            Lineage::token("x"),
            Lineage::token("y").plus(&Lineage::token("z")),
        ];
        for a in &samples {
            assert!(laws::check_idempotent(a));
            for b in &samples {
                for c in &samples {
                    assert_eq!(laws::check_axioms(a, b, c), None);
                }
            }
        }
    }

    #[test]
    fn why_provenance_distinguishes_witnesses() {
        // (x + y) * z  has witnesses {x,z} and {y,z}
        let x = Why::token("x");
        let y = Why::token("y");
        let z = Why::token("z");
        let result = x.plus(&y).times(&z);
        assert_eq!(result.witnesses.len(), 2);
        assert!(result.witnesses.contains(&BTreeSet::from(["x", "z"])));
        assert!(result.witnesses.contains(&BTreeSet::from(["y", "z"])));
    }

    #[test]
    fn why_minimal_drops_supersets() {
        let x = Why::token("x");
        let xy = x.times(&Why::token("y"));
        let both = x.plus(&xy);
        assert_eq!(both.witnesses.len(), 2);
        let min = both.minimal();
        assert_eq!(min.witnesses, BTreeSet::from([BTreeSet::from(["x"])]));
    }

    #[test]
    fn why_laws() {
        let samples = [
            Why::zero(),
            Why::one(),
            Why::token("x"),
            Why::token("x").times(&Why::token("y")),
            Why::token("x").plus(&Why::token("y")),
        ];
        for a in &samples {
            assert!(laws::check_idempotent(a));
            for b in &samples {
                for c in &samples {
                    assert_eq!(laws::check_axioms(a, b, c), None);
                }
            }
        }
    }
}
