//! # fgc-semiring — provenance semirings and the citation algebra
//!
//! The algebraic heart of the `fgcite` workspace (reproduction of
//! *"A Model for Fine-Grained Data Citation"*, CIDR 2017). The paper
//! models citations as annotations manipulated through queries,
//! "tak\[ing\] inspiration from work on database provenance, in
//! particular that of provenance semirings":
//!
//! * [`traits`] — the commutative-semiring abstraction plus law
//!   checkers;
//! * [`instances`] — ℕ (bag), 𝔹 (set), tropical (cost), lineage and
//!   why-provenance;
//! * [`polynomial`] — the free semiring `ℕ[X]` with its universal
//!   evaluation homomorphism;
//! * [`citation`] — the paper's two-level citation expressions:
//!   per-rewriting polynomials combined by the distinct operation
//!   `+R` (Definitions 3.1–3.3);
//! * [`order`] — the partial orders of §3.4 (fewest views, fewest
//!   uncovered terms, view inclusion), normal forms, and the lifting
//!   from monomials to polynomials.

#![warn(missing_docs)]

pub mod citation;
pub mod instances;
pub mod order;
pub mod polynomial;
pub mod traits;

pub use citation::CitationExpr;
pub use instances::{Bool, Lineage, Natural, Tropical, Why};
pub use order::{
    normal_form, poly_leq, FewestUncovered, FewestViews, Lexicographic, MonomialOrder, NoOrder,
    TokenDominance,
};
pub use polynomial::{Monomial, Polynomial};
pub use traits::{laws, CommutativeSemiring, IdempotentPlus};
