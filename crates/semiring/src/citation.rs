//! The citation-semiring expression — the paper's two-level structure
//! (§3.2, Definitions 3.1–3.3).
//!
//! For a fixed rewriting `Q'` of a query `Q`, the citation of an
//! output tuple is a **polynomial** over citation atoms: products
//! (`·`, Def 3.1) of per-view citations within one binding, summed
//! (`+`, Def 3.2) across bindings. Across **alternative rewritings**
//! the results are combined with a *different* operation `+R`
//! (Def 3.3), with its own neutral element `0R`.
//!
//! A [`CitationExpr`] is therefore a finite set of labelled
//! polynomials, one per rewriting, combined associatively and
//! commutatively by `+R`. It is a *formal semantics* object: the
//! engine materializes it symbolically and interprets it later under
//! an owner policy — which makes citations plan-independent by
//! construction ("the citations obtained for two equivalent queries
//! will always be the same").

use crate::order::{normal_form, poly_leq, MonomialOrder};
use crate::polynomial::Polynomial;
use crate::traits::CommutativeSemiring;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Debug;

/// A citation expression: `+R` over per-rewriting polynomials.
///
/// `R` is the rewriting label type (kept so that explanations can
/// point back at the rewriting that produced each alternative);
/// `T` is the citation-atom token type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CitationExpr<R: Ord + Clone, T: Ord + Clone> {
    /// One polynomial per rewriting. `BTreeMap` gives `+R` its
    /// commutativity/associativity for free and keeps iteration
    /// deterministic. Polynomials from identically-labelled rewritings
    /// are merged with `+` (they denote the same rewriting).
    alternatives: BTreeMap<R, Polynomial<T>>,
}

impl<R: Ord + Clone + Debug, T: Ord + Clone + Debug> CitationExpr<R, T> {
    /// The neutral element `0R` of `+R`.
    pub fn zero_r() -> Self {
        CitationExpr {
            alternatives: BTreeMap::new(),
        }
    }

    /// An expression with a single rewriting alternative.
    pub fn single(rewriting: R, polynomial: Polynomial<T>) -> Self {
        let mut alternatives = BTreeMap::new();
        if !polynomial.is_zero_poly() {
            alternatives.insert(rewriting, polynomial);
        }
        CitationExpr { alternatives }
    }

    /// `+R`: combine alternatives from different rewritings.
    pub fn plus_r(&self, other: &Self) -> Self {
        let mut alternatives = self.alternatives.clone();
        for (r, p) in &other.alternatives {
            match alternatives.get_mut(r) {
                Some(existing) => *existing = existing.plus(p),
                None => {
                    alternatives.insert(r.clone(), p.clone());
                }
            }
        }
        CitationExpr { alternatives }
    }

    /// Is this `0R` (no alternative at all)?
    pub fn is_zero_r(&self) -> bool {
        self.alternatives.is_empty()
    }

    /// Number of rewriting alternatives.
    pub fn num_alternatives(&self) -> usize {
        self.alternatives.len()
    }

    /// Iterate `(rewriting label, polynomial)`.
    pub fn alternatives(&self) -> impl Iterator<Item = (&R, &Polynomial<T>)> {
        self.alternatives.iter()
    }

    /// Total number of monomials across all alternatives — the
    /// "size of the resulting citation" the paper wants minimized.
    pub fn total_monomials(&self) -> usize {
        self.alternatives
            .values()
            .map(Polynomial::num_monomials)
            .sum()
    }

    /// Flatten to a single polynomial by interpreting `+R` as `+`
    /// (the "union" interpretation of §3.3).
    pub fn flatten(&self) -> Polynomial<T> {
        self.alternatives
            .values()
            .fold(Polynomial::zero(), |acc, p| acc.plus(p))
    }

    /// Distribute a product over `+R` — the distributivity the paper
    /// assumes in Example 3.3:
    /// `(a +R b) · c = a·c +R b·c` (per-alternative multiplication).
    pub fn times_poly(&self, factor: &Polynomial<T>) -> Self {
        CitationExpr {
            alternatives: self
                .alternatives
                .iter()
                .map(|(r, p)| (r.clone(), p.times(factor)))
                .collect(),
        }
    }

    /// Normal form under a monomial order (§3.4):
    /// 1. normalize each alternative's polynomial;
    /// 2. apply `p1 +R p2 = p1 if p2 ≤ p1` — keep only the maximal
    ///    alternatives under the lifted polynomial order; among
    ///    equivalent alternatives keep the one with the `Ord`-least
    ///    rewriting label.
    pub fn normal_form<O: MonomialOrder<T>>(&self, order: &O) -> Self {
        let normalized: Vec<(R, Polynomial<T>)> = self
            .alternatives
            .iter()
            .map(|(r, p)| (r.clone(), normal_form(p, order)))
            .collect();
        let keep = normalized.iter().filter(|(r1, p1)| {
            !normalized.iter().any(|(r2, p2)| {
                if r1 == r2 {
                    return false;
                }
                let le = poly_leq(p1, p2, order);
                let ge = poly_leq(p2, p1, order);
                if le && !ge {
                    true // strictly dominated
                } else if le && ge {
                    r2 < r1 // equivalent: keep Ord-least label
                } else {
                    false
                }
            })
        });
        CitationExpr {
            alternatives: keep.cloned().collect(),
        }
    }

    /// Interpret the expression under concrete operations: a token
    /// valuation into a semiring `S` (supplying `+` and `·`) and a
    /// binary `plus_r` for combining alternatives. Returns `None` for
    /// `0R` (the caller supplies the neutral citation).
    pub fn interpret<S, V, P>(&self, mut valuation: V, mut plus_r: P) -> Option<S>
    where
        S: CommutativeSemiring,
        V: FnMut(&T) -> S,
        P: FnMut(S, S) -> S,
    {
        let mut iter = self.alternatives.values();
        let first = iter.next()?.eval(&mut valuation);
        Some(iter.fold(first, |acc, p| plus_r(acc, p.eval(&mut valuation))))
    }
}

impl<R: Ord + Clone + fmt::Display, T: Ord + Clone + fmt::Display> fmt::Display
    for CitationExpr<R, T>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.alternatives.is_empty() {
            return f.write_str("0R");
        }
        let mut first = true;
        for (r, p) in &self.alternatives {
            if !first {
                f.write_str(" +R ")?;
            }
            first = false;
            write!(f, "[{r}: {p}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::Natural;
    use crate::order::FewestViews;
    use crate::polynomial::Monomial;

    type Expr = CitationExpr<&'static str, &'static str>;

    fn poly(monos: &[&[&'static str]]) -> Polynomial<&'static str> {
        Polynomial::from_terms(
            monos
                .iter()
                .map(|ts| (Monomial::from_pairs(ts.iter().map(|t| (*t, 1))), 1)),
        )
    }

    #[test]
    fn plus_r_is_commutative_and_associative() {
        let a = Expr::single("Q1", poly(&[&["v1"]]));
        let b = Expr::single("Q2", poly(&[&["v2"]]));
        let c = Expr::single("Q3", poly(&[&["v3"]]));
        assert_eq!(a.plus_r(&b), b.plus_r(&a));
        assert_eq!(a.plus_r(&b).plus_r(&c), a.plus_r(&b.plus_r(&c)));
    }

    #[test]
    fn zero_r_is_neutral() {
        let a = Expr::single("Q1", poly(&[&["v1"]]));
        assert_eq!(a.plus_r(&Expr::zero_r()), a);
        assert_eq!(Expr::zero_r().plus_r(&a), a);
        assert!(Expr::zero_r().is_zero_r());
    }

    #[test]
    fn same_rewriting_merges_with_plus() {
        let a = Expr::single("Q1", poly(&[&["v1"]]));
        let b = Expr::single("Q1", poly(&[&["v2"]]));
        let merged = a.plus_r(&b);
        assert_eq!(merged.num_alternatives(), 1);
        let (_, p) = merged.alternatives().next().unwrap();
        assert_eq!(p.num_monomials(), 2);
    }

    #[test]
    fn times_poly_distributes_over_alternatives() {
        // Example 3.3 shape: (CV1(13) +R CV4(gpcr)) · CV2(13)
        let e = Expr::single("Q1", poly(&[&["cv1_13"]]))
            .plus_r(&Expr::single("Q2", poly(&[&["cv4_gpcr"]])));
        let distributed = e.times_poly(&poly(&[&["cv2_13"]]));
        let expected = Expr::single("Q1", poly(&[&["cv1_13", "cv2_13"]]))
            .plus_r(&Expr::single("Q2", poly(&[&["cv4_gpcr", "cv2_13"]])));
        assert_eq!(distributed, expected);
    }

    #[test]
    fn normal_form_keeps_preferable_rewriting() {
        let order = FewestViews::new(|t: &&str| t.starts_with('v'));
        // Q4 uses one view; Q3 uses two — Example 2.3's preference
        let e = Expr::single("Q3", poly(&[&["v4", "v2"]]))
            .plus_r(&Expr::single("Q4", poly(&[&["v5"]])));
        let nf = e.normal_form(&order);
        assert_eq!(nf.num_alternatives(), 1);
        assert_eq!(*nf.alternatives().next().unwrap().0, "Q4");
    }

    #[test]
    fn normal_form_keeps_incomparable_alternatives() {
        // token-identity order: different monomials incomparable
        let order = crate::order::NoOrder;
        let e = Expr::single("Q1", poly(&[&["v1"]])).plus_r(&Expr::single("Q2", poly(&[&["v2"]])));
        assert_eq!(e.normal_form(&order).num_alternatives(), 2);
    }

    #[test]
    fn normal_form_equivalent_keeps_least_label() {
        let order = FewestViews::new(|t: &&str| t.starts_with('v'));
        let e = Expr::single("Q2", poly(&[&["v1"]])).plus_r(&Expr::single("Q1", poly(&[&["v2"]])));
        let nf = e.normal_form(&order);
        assert_eq!(nf.num_alternatives(), 1);
        assert_eq!(*nf.alternatives().next().unwrap().0, "Q1");
    }

    #[test]
    fn flatten_unions_alternatives() {
        let e = Expr::single("Q1", poly(&[&["v1"]])).plus_r(&Expr::single("Q2", poly(&[&["v2"]])));
        assert_eq!(e.flatten().num_monomials(), 2);
        assert_eq!(e.total_monomials(), 2);
    }

    #[test]
    fn interpret_counts_derivations() {
        let e = Expr::single("Q1", poly(&[&["v1"], &["v2"]]))
            .plus_r(&Expr::single("Q2", poly(&[&["v3"]])));
        // + within rewriting, max across rewritings
        let got = e
            .interpret(
                |_| Natural(1),
                |a: Natural, b: Natural| Natural(a.0.max(b.0)),
            )
            .unwrap();
        assert_eq!(got, Natural(2));
        assert_eq!(
            Expr::zero_r().interpret(|_| Natural(1), |a, b| a.plus(&b)),
            None
        );
    }

    #[test]
    fn display_shows_structure() {
        let e = Expr::single("Q1", poly(&[&["v1", "v2"]]));
        assert_eq!(e.to_string(), "[Q1: v1·v2]");
        assert_eq!(Expr::zero_r().to_string(), "0R");
    }
}
