//! Partial orders over monomials and polynomials — §3.4 of the paper.
//!
//! > "We first define a partial order ≤ over monomials in the citation
//! > semiring ... We then impose that a + b = a if b ≤ a ... Such
//! > order relation can then be lifted to order relation over
//! > polynomials: to compare polynomials p1 and p2 we first transform
//! > each polynomial into a 'normal form', removing every monomial M2
//! > for which there exists a monomial M1 ≥ M2. Then, we say that
//! > p2 ≤ p1 if for every monomial M2 in the normal form of p2 there
//! > exists a monomial M1 in the normal form of p1 such that M2 ≤ M1.
//! > Finally, we impose p1 +R p2 = p1 if p2 ≤ p1."
//!
//! The three concrete orders are the paper's Examples 3.6 (fewest
//! views), 3.7 (fewest uncovered/base terms) and 3.8 (view inclusion).
//!
//! Orders here are *preorders* (reflexive + transitive); antisymmetry
//! may fail, so two distinct monomials can be equivalent. Normal forms
//! keep one canonical representative (the `Ord`-least) per equivalence
//! class so that normalization never erases a class entirely.

use crate::polynomial::{Monomial, Polynomial};
use std::cmp::Ordering;
use std::fmt::Debug;

/// A preorder over monomials. `leq(a, b)` means "b is at least as
/// preferable as a" — larger is better, matching the paper's
/// convention (`a + b = a if b ≤ a`: keep the preferable one).
pub trait MonomialOrder<T: Ord + Clone> {
    /// Is `a ≤ b` (b at least as preferable)?
    fn leq(&self, a: &Monomial<T>, b: &Monomial<T>) -> bool;

    /// Strict comparison: `a < b`.
    fn lt(&self, a: &Monomial<T>, b: &Monomial<T>) -> bool {
        self.leq(a, b) && !self.leq(b, a)
    }

    /// Equivalence: `a ≤ b` and `b ≤ a`.
    fn equivalent(&self, a: &Monomial<T>, b: &Monomial<T>) -> bool {
        self.leq(a, b) && self.leq(b, a)
    }

    /// Three-way partial comparison.
    fn partial_cmp(&self, a: &Monomial<T>, b: &Monomial<T>) -> Option<Ordering> {
        match (self.leq(a, b), self.leq(b, a)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

// ---------------------------------------------------------------------
// Example 3.6 — fewest views
// ---------------------------------------------------------------------

/// "M1 ≤ M2 if the number of multiplicands in M1 is greater or equal
/// to that of M2 (note that we only cite views, not base relations)."
///
/// `is_view` selects the tokens that count as view citations.
pub struct FewestViews<F> {
    is_view: F,
}

impl<F> FewestViews<F> {
    /// Build the order with a token classifier.
    pub fn new(is_view: F) -> Self {
        FewestViews { is_view }
    }
}

impl<T, F> MonomialOrder<T> for FewestViews<F>
where
    T: Ord + Clone,
    F: Fn(&T) -> bool,
{
    fn leq(&self, a: &Monomial<T>, b: &Monomial<T>) -> bool {
        a.degree_where(|t| (self.is_view)(t)) >= b.degree_where(|t| (self.is_view)(t))
    }
}

// ---------------------------------------------------------------------
// Example 3.7 — fewest uncovered terms
// ---------------------------------------------------------------------

/// "we designate a citation atom C_R to be placed in the citation
/// whenever the query uses a base relation R. Now we can define
/// M1 ≤ M2 ... if the number of atoms of the form C_R in M1 is
/// greater or equal than that in M2."
pub struct FewestUncovered<F> {
    is_base: F,
}

impl<F> FewestUncovered<F> {
    /// Build the order with a base-relation-marker classifier.
    pub fn new(is_base: F) -> Self {
        FewestUncovered { is_base }
    }
}

impl<T, F> MonomialOrder<T> for FewestUncovered<F>
where
    T: Ord + Clone,
    F: Fn(&T) -> bool,
{
    fn leq(&self, a: &Monomial<T>, b: &Monomial<T>) -> bool {
        a.degree_where(|t| (self.is_base)(t)) >= b.degree_where(|t| (self.is_base)(t))
    }
}

// ---------------------------------------------------------------------
// Example 3.8 — view inclusion
// ---------------------------------------------------------------------

/// Order based on an underlying token preorder (e.g. view inclusion:
/// token `a ≤ b` if a's view *includes* b's view, so b is "best fit").
///
/// Lifting per the paper: first normalize each monomial w.r.t. the
/// token order (`a · b = a if b ≤ a` — drop dominated factors), then
/// `a1·...·an ≤ b1·...·bm` if for every `ai` there is a `bj` with
/// `ai ≤ bj`.
pub struct TokenDominance<F> {
    token_leq: F,
}

impl<F> TokenDominance<F> {
    /// Build from the underlying token preorder.
    pub fn new(token_leq: F) -> Self {
        TokenDominance { token_leq }
    }

    /// Normalize a monomial w.r.t. the token order: keep only factors
    /// not strictly dominated by another factor, and collapse
    /// equivalent factors to one representative.
    pub fn normalize_monomial<T>(&self, m: &Monomial<T>) -> Monomial<T>
    where
        T: Ord + Clone,
        F: Fn(&T, &T) -> bool,
    {
        let tokens: Vec<&T> = m.tokens().collect();
        let leq = &self.token_leq;
        let mut keep: Vec<&T> = Vec::new();
        for t in &tokens {
            let dominated = tokens.iter().any(|other| {
                if std::ptr::eq(*other, *t) {
                    return false;
                }
                let oge = leq(t, other); // t ≤ other
                let ole = leq(other, t); // other ≤ t
                if oge && !ole {
                    true // strictly dominated
                } else if oge && ole {
                    // equivalent: keep the Ord-least representative
                    *other < *t
                } else {
                    false
                }
            });
            if !dominated {
                keep.push(t);
            }
        }
        Monomial::from_pairs(keep.into_iter().map(|t| (t.clone(), 1)))
    }
}

impl<T, F> MonomialOrder<T> for TokenDominance<F>
where
    T: Ord + Clone,
    F: Fn(&T, &T) -> bool,
{
    fn leq(&self, a: &Monomial<T>, b: &Monomial<T>) -> bool {
        let na = self.normalize_monomial(a);
        let nb = self.normalize_monomial(b);
        let leq = &self.token_leq;
        let result = na.tokens().all(|ai| nb.tokens().any(|bj| leq(ai, bj)));
        result
    }
}

// ---------------------------------------------------------------------
// Composition and trivial orders
// ---------------------------------------------------------------------

/// The trivial order: no two distinct monomials comparable. Normal
/// forms under it are the identity — the "no preference" policy.
pub struct NoOrder;

impl<T: Ord + Clone> MonomialOrder<T> for NoOrder {
    fn leq(&self, a: &Monomial<T>, b: &Monomial<T>) -> bool {
        a == b
    }
}

/// Lexicographic composition: use `first`; on ties (equivalence),
/// refine by `second`.
pub struct Lexicographic<A, B> {
    first: A,
    second: B,
}

impl<A, B> Lexicographic<A, B> {
    /// Compose two orders lexicographically.
    pub fn new(first: A, second: B) -> Self {
        Lexicographic { first, second }
    }
}

impl<T, A, B> MonomialOrder<T> for Lexicographic<A, B>
where
    T: Ord + Clone,
    A: MonomialOrder<T>,
    B: MonomialOrder<T>,
{
    fn leq(&self, a: &Monomial<T>, b: &Monomial<T>) -> bool {
        if self.first.equivalent(a, b) {
            self.second.leq(a, b)
        } else {
            self.first.leq(a, b)
        }
    }
}

// ---------------------------------------------------------------------
// Polynomial normal forms and lifted order (§3.4)
// ---------------------------------------------------------------------

/// Normal form of a polynomial under a monomial order: drop every
/// monomial strictly dominated by another; among equivalent monomials
/// keep the `Ord`-least representative. Coefficients are squashed to 1
/// (the order model presumes idempotent `+`: `a + b = a if b ≤ a`
/// subsumes `a + a = a`).
pub fn normal_form<T, O>(p: &Polynomial<T>, order: &O) -> Polynomial<T>
where
    T: Ord + Clone + Debug,
    O: MonomialOrder<T>,
{
    let monomials: Vec<&Monomial<T>> = p.monomials().collect();
    let keep = monomials.iter().filter(|m| {
        !monomials.iter().any(|other| {
            if other == *m {
                return false;
            }
            if order.lt(m, other) {
                true
            } else if order.equivalent(m, other) {
                // keep the Ord-least representative of the class
                *other < **m
            } else {
                false
            }
        })
    });
    Polynomial::from_terms(keep.map(|m| ((*m).clone(), 1)))
}

/// Lifted order on polynomials: `p2 ≤ p1` iff every monomial in
/// `nf(p2)` is ≤ some monomial in `nf(p1)`.
pub fn poly_leq<T, O>(p2: &Polynomial<T>, p1: &Polynomial<T>, order: &O) -> bool
where
    T: Ord + Clone + Debug,
    O: MonomialOrder<T>,
{
    let n2 = normal_form(p2, order);
    let n1 = normal_form(p1, order);
    let result = n2
        .monomials()
        .all(|m2| n1.monomials().any(|m1| order.leq(m2, m1)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    type M = Monomial<&'static str>;
    type P = Polynomial<&'static str>;

    fn m(tokens: &[&'static str]) -> M {
        Monomial::from_pairs(tokens.iter().map(|t| (*t, 1)))
    }

    fn poly(monos: &[&[&'static str]]) -> P {
        Polynomial::from_terms(monos.iter().map(|ts| (m(ts), 1)))
    }

    fn is_view(t: &&str) -> bool {
        t.starts_with('v')
    }

    fn is_base(t: &&str) -> bool {
        t.starts_with("CR")
    }

    #[test]
    fn fewest_views_prefers_smaller_monomials() {
        let order = FewestViews::new(is_view);
        let one_view = m(&["v5"]);
        let two_views = m(&["v4", "v2"]);
        // two_views ≤ one_view (more multiplicands is less preferable)
        assert!(order.leq(&two_views, &one_view));
        assert!(!order.leq(&one_view, &two_views));
        assert!(order.lt(&two_views, &one_view));
    }

    #[test]
    fn fewest_views_ignores_base_tokens() {
        let order = FewestViews::new(is_view);
        let a = m(&["v1", "CR_Family"]);
        let b = m(&["v1"]);
        assert!(order.equivalent(&a, &b));
    }

    #[test]
    fn fewest_uncovered_counts_cr_atoms() {
        let order = FewestUncovered::new(is_base);
        let covered = m(&["v1", "v2"]);
        let partial = m(&["v1", "CR_Family"]);
        assert!(order.lt(&partial, &covered));
    }

    #[test]
    fn token_dominance_normalizes_monomials() {
        // view inclusion: v1 (per-family) ≤ v3 (whole table) means v3's
        // citation is dominated by the more specific v1?  The paper
        // says a ≤ b if a stems from V1, b from V2, and V2 ⊑ V1: the
        // more *general* view is ≤ the more *specific* one.
        let token_leq = |a: &&str, b: &&str| a == b || (*a == "v3" && *b == "v1");
        let order = TokenDominance::new(token_leq);
        // v3·v1 normalizes to v1
        let norm = order.normalize_monomial(&m(&["v3", "v1"]));
        assert_eq!(norm, m(&["v1"]));
        // v3 ≤ v1 lifts to monomials
        assert!(order.leq(&m(&["v3"]), &m(&["v1"])));
        assert!(!order.leq(&m(&["v1"]), &m(&["v3"])));
    }

    #[test]
    fn token_dominance_equivalent_tokens_keep_one() {
        let token_leq =
            |a: &&str, b: &&str| a == b || (*a == "x" && *b == "y") || (*a == "y" && *b == "x");
        let order = TokenDominance::new(token_leq);
        let norm = order.normalize_monomial(&m(&["x", "y"]));
        assert_eq!(norm, m(&["x"])); // Ord-least representative
    }

    #[test]
    fn no_order_normal_form_is_identity_on_monomial_sets() {
        let p = poly(&[&["v1"], &["v1", "v2"]]);
        let nf = normal_form(&p, &NoOrder);
        assert_eq!(nf.num_monomials(), 2);
    }

    #[test]
    fn normal_form_drops_dominated_monomials() {
        let order = FewestViews::new(is_view);
        let p = poly(&[&["v5"], &["v4", "v2"], &["v1", "v2", "v3"]]);
        let nf = normal_form(&p, &order);
        assert_eq!(nf.num_monomials(), 1);
        assert!(nf.monomials().next().unwrap() == &m(&["v5"]));
    }

    #[test]
    fn normal_form_keeps_one_of_equivalent_class() {
        let order = FewestViews::new(is_view);
        let p = poly(&[&["v1"], &["v2"]]); // equivalent (1 view each)
        let nf = normal_form(&p, &order);
        assert_eq!(nf.num_monomials(), 1);
        // Ord-least representative survives
        assert_eq!(nf.monomials().next().unwrap(), &m(&["v1"]));
    }

    #[test]
    fn poly_leq_lifting() {
        let order = FewestViews::new(is_view);
        let concise = poly(&[&["v5"]]);
        let verbose = poly(&[&["v4", "v2"], &["v1", "v2"]]);
        assert!(poly_leq(&verbose, &concise, &order));
        assert!(!poly_leq(&concise, &verbose, &order));
    }

    #[test]
    fn lexicographic_breaks_ties() {
        // primary: fewest views; secondary: fewest uncovered
        let order = Lexicographic::new(FewestViews::new(is_view), FewestUncovered::new(is_base));
        let a = m(&["v1", "CR_F"]);
        let b = m(&["v2"]);
        // equal view counts; a has more CR atoms so a < b
        assert!(order.lt(&a, &b));
    }

    #[test]
    fn partial_cmp_reports_incomparability() {
        // token dominance with incomparable tokens
        let token_leq = |a: &&str, b: &&str| a == b;
        let order = TokenDominance::new(token_leq);
        assert_eq!(order.partial_cmp(&m(&["x"]), &m(&["y"])), None);
        assert_eq!(
            order.partial_cmp(&m(&["x"]), &m(&["x"])),
            Some(Ordering::Equal)
        );
    }
}
