//! The commutative-semiring abstraction (§3.1 of the paper).
//!
//! > "we start with a set of basic citations C, and introduce an
//! > abstract operation + on it with the properties that + is
//! > commutative, associative, and has some neutral element 0 in C.
//! > Similarly we introduce an operation · with the same properties,
//! > but with a different neutral element 1. Last, we impose that ·
//! > is distributive over +."

use std::fmt::Debug;

/// A commutative semiring `(C, +, ·, 0, 1)`.
///
/// Implementations must satisfy the usual axioms (checked by the
/// property tests in this crate and re-checked for each concrete
/// instance by [`crate::laws`]):
///
/// * `+` commutative, associative, neutral `0`
/// * `·` commutative, associative, neutral `1`
/// * `·` distributes over `+`
/// * `0 · a = 0` (annihilation)
pub trait CommutativeSemiring: Clone + PartialEq + Debug {
    /// Neutral element of `+`.
    fn zero() -> Self;
    /// Neutral element of `·`.
    fn one() -> Self;
    /// Alternative use of annotations (union / projection collapse).
    fn plus(&self, other: &Self) -> Self;
    /// Joint use of annotations (join).
    fn times(&self, other: &Self) -> Self;

    /// Is this the additive neutral?
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Is this the multiplicative neutral?
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// Sum of an iterator of elements (`0` if empty).
    fn sum<I: IntoIterator<Item = Self>>(items: I) -> Self {
        items.into_iter().fold(Self::zero(), |acc, x| acc.plus(&x))
    }

    /// Product of an iterator of elements (`1` if empty).
    fn product<I: IntoIterator<Item = Self>>(items: I) -> Self {
        items.into_iter().fold(Self::one(), |acc, x| acc.times(&x))
    }
}

/// Marker trait: `a + a = a`. The paper leans on idempotence in
/// Example 3.4 ("Assuming that + is idempotent (a + a = a, e.g. as in
/// set union), we get a single citation ... for each tuple").
pub trait IdempotentPlus: CommutativeSemiring {}

/// Law-checking helpers, used by unit and property tests of every
/// semiring instance in this crate (and available to downstream
/// crates for their own instances).
pub mod laws {
    use super::CommutativeSemiring;

    /// Check all semiring axioms on a triple of sample values.
    /// Returns the name of the first violated law, if any.
    pub fn check_axioms<S: CommutativeSemiring>(a: &S, b: &S, c: &S) -> Option<&'static str> {
        let zero = S::zero();
        let one = S::one();
        if a.plus(b) != b.plus(a) {
            return Some("+ commutativity");
        }
        if a.plus(&b.plus(c)) != a.plus(b).plus(c) {
            return Some("+ associativity");
        }
        if a.plus(&zero) != *a {
            return Some("+ neutral");
        }
        if a.times(b) != b.times(a) {
            return Some("* commutativity");
        }
        if a.times(&b.times(c)) != a.times(b).times(c) {
            return Some("* associativity");
        }
        if a.times(&one) != *a {
            return Some("* neutral");
        }
        if a.times(&b.plus(c)) != a.times(b).plus(&a.times(c)) {
            return Some("distributivity");
        }
        if a.times(&zero) != zero {
            return Some("annihilation");
        }
        None
    }

    /// Check idempotence of `+` on a sample value.
    pub fn check_idempotent<S: CommutativeSemiring>(a: &S) -> bool {
        a.plus(a) == *a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal instance for exercising the default methods.
    #[derive(Debug, Clone, PartialEq)]
    struct MaxPlus(i64);

    impl CommutativeSemiring for MaxPlus {
        fn zero() -> Self {
            MaxPlus(i64::MIN)
        }
        fn one() -> Self {
            MaxPlus(0)
        }
        fn plus(&self, other: &Self) -> Self {
            MaxPlus(self.0.max(other.0))
        }
        fn times(&self, other: &Self) -> Self {
            // saturating to keep annihilation exact at i64::MIN
            if self.0 == i64::MIN || other.0 == i64::MIN {
                MaxPlus(i64::MIN)
            } else {
                MaxPlus(self.0 + other.0)
            }
        }
    }

    #[test]
    fn default_sum_and_product() {
        let xs = vec![MaxPlus(1), MaxPlus(5), MaxPlus(3)];
        assert_eq!(MaxPlus::sum(xs.clone()), MaxPlus(5));
        assert_eq!(MaxPlus::product(xs), MaxPlus(9));
        assert_eq!(MaxPlus::sum(Vec::<MaxPlus>::new()), MaxPlus::zero());
        assert_eq!(MaxPlus::product(Vec::<MaxPlus>::new()), MaxPlus::one());
    }

    #[test]
    fn laws_hold_for_max_plus() {
        let samples = [MaxPlus(i64::MIN), MaxPlus(-2), MaxPlus(0), MaxPlus(7)];
        for a in &samples {
            assert!(laws::check_idempotent(a));
            for b in &samples {
                for c in &samples {
                    assert_eq!(laws::check_axioms(a, b, c), None);
                }
            }
        }
    }

    #[test]
    fn is_zero_is_one() {
        assert!(MaxPlus(i64::MIN).is_zero());
        assert!(MaxPlus(0).is_one());
        assert!(!MaxPlus(3).is_zero());
    }
}
