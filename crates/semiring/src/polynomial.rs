//! Provenance polynomials `ℕ[X]` — the free commutative semiring over
//! a set of tokens (Green et al., PODS 2007; the paper's model for the
//! joint (`·`) and alternative (`+`) use of citation annotations,
//! §3.1–3.2).
//!
//! A [`Monomial`] is a multiset of tokens (token → exponent); a
//! [`Polynomial`] is a multiset of monomials (monomial → coefficient).
//! `ℕ[X]` is *universal*: any token valuation into any commutative
//! semiring extends uniquely to a semiring homomorphism, implemented
//! by [`Polynomial::eval`]. This is exactly why the citation engine
//! can compute the symbolic citation once and interpret it under any
//! owner-chosen policy afterwards.

use crate::traits::CommutativeSemiring;
use std::collections::BTreeMap;
use std::fmt;

/// A monomial: finite multiset of tokens with positive exponents.
/// The empty monomial is the multiplicative unit `1`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial<T: Ord + Clone> {
    factors: BTreeMap<T, u32>,
}

impl<T: Ord + Clone> Monomial<T> {
    /// The unit monomial (`1`).
    pub fn unit() -> Self {
        Monomial {
            factors: BTreeMap::new(),
        }
    }

    /// A single-token monomial.
    pub fn token(t: T) -> Self {
        Monomial {
            factors: BTreeMap::from([(t, 1)]),
        }
    }

    /// Build from `(token, exponent)` pairs; zero exponents dropped.
    pub fn from_pairs<I: IntoIterator<Item = (T, u32)>>(pairs: I) -> Self {
        let mut factors = BTreeMap::new();
        for (t, e) in pairs {
            if e > 0 {
                *factors.entry(t).or_insert(0) += e;
            }
        }
        Monomial { factors }
    }

    /// Multiply two monomials (add exponents).
    pub fn times(&self, other: &Self) -> Self {
        let mut factors = self.factors.clone();
        for (t, e) in &other.factors {
            *factors.entry(t.clone()).or_insert(0) += e;
        }
        Monomial { factors }
    }

    /// Total degree (sum of exponents) — "number of multiplicands".
    pub fn degree(&self) -> u32 {
        self.factors.values().sum()
    }

    /// Degree counting only tokens satisfying the predicate. Used by
    /// the order relations of §3.4, which count only *view* citations
    /// (Ex 3.6) or only *base-relation* markers `C_R` (Ex 3.7).
    pub fn degree_where(&self, mut pred: impl FnMut(&T) -> bool) -> u32 {
        self.factors
            .iter()
            .filter(|(t, _)| pred(t))
            .map(|(_, e)| *e)
            .sum()
    }

    /// Is this the unit monomial?
    pub fn is_unit(&self) -> bool {
        self.factors.is_empty()
    }

    /// Distinct tokens with exponents.
    pub fn iter(&self) -> impl Iterator<Item = (&T, u32)> {
        self.factors.iter().map(|(t, e)| (t, *e))
    }

    /// Distinct tokens.
    pub fn tokens(&self) -> impl Iterator<Item = &T> {
        self.factors.keys()
    }

    /// Exponent of a token (0 if absent).
    pub fn exponent(&self, t: &T) -> u32 {
        self.factors.get(t).copied().unwrap_or(0)
    }

    /// Drop exponents to 1 (the `exp(a·a) = a` part of working in an
    /// idempotent-`·` quotient like PosBool\[X\]).
    pub fn squash_exponents(&self) -> Self {
        Monomial {
            factors: self.factors.keys().map(|t| (t.clone(), 1)).collect(),
        }
    }

    /// Map tokens through `f`, multiplying the images (a homomorphism
    /// into any semiring restricted to this monomial).
    pub fn eval<S: CommutativeSemiring>(&self, mut f: impl FnMut(&T) -> S) -> S {
        let mut acc = S::one();
        for (t, e) in &self.factors {
            let img = f(t);
            for _ in 0..*e {
                acc = acc.times(&img);
            }
        }
        acc
    }
}

impl<T: Ord + Clone + fmt::Display> fmt::Display for Monomial<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unit() {
            return f.write_str("1");
        }
        let mut first = true;
        for (t, e) in &self.factors {
            if !first {
                f.write_str("·")?;
            }
            first = false;
            if *e == 1 {
                write!(f, "{t}")?;
            } else {
                write!(f, "{t}^{e}")?;
            }
        }
        Ok(())
    }
}

/// A provenance polynomial: multiset of monomials with positive
/// natural coefficients.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Polynomial<T: Ord + Clone> {
    terms: BTreeMap<Monomial<T>, u64>,
}

impl<T: Ord + Clone> Polynomial<T> {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial {
            terms: BTreeMap::new(),
        }
    }

    /// The unit polynomial (`1`).
    pub fn one() -> Self {
        Polynomial {
            terms: BTreeMap::from([(Monomial::unit(), 1)]),
        }
    }

    /// A single-token polynomial.
    pub fn token(t: T) -> Self {
        Polynomial::from_monomial(Monomial::token(t))
    }

    /// A polynomial with one monomial (coefficient 1).
    pub fn from_monomial(m: Monomial<T>) -> Self {
        Polynomial {
            terms: BTreeMap::from([(m, 1)]),
        }
    }

    /// Build from `(monomial, coefficient)` pairs; zero coefficients
    /// dropped, duplicates summed.
    pub fn from_terms<I: IntoIterator<Item = (Monomial<T>, u64)>>(pairs: I) -> Self {
        let mut terms = BTreeMap::new();
        for (m, c) in pairs {
            if c > 0 {
                *terms.entry(m).or_insert(0) += c;
            }
        }
        Polynomial { terms }
    }

    /// Number of distinct monomials.
    pub fn num_monomials(&self) -> usize {
        self.terms.len()
    }

    /// Is this the zero polynomial?
    pub fn is_zero_poly(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate `(monomial, coefficient)`.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial<T>, u64)> {
        self.terms.iter().map(|(m, c)| (m, *c))
    }

    /// Monomials only.
    pub fn monomials(&self) -> impl Iterator<Item = &Monomial<T>> {
        self.terms.keys()
    }

    /// All distinct tokens across all monomials.
    pub fn support(&self) -> Vec<&T> {
        let mut out: Vec<&T> = Vec::new();
        for m in self.terms.keys() {
            for t in m.tokens() {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Idempotent-`+` normal form: all coefficients become 1 — the
    /// `a + a = a` quotient the paper assumes for set-union-like
    /// interpretations (Example 3.4).
    pub fn squash_coefficients(&self) -> Self {
        Polynomial {
            terms: self.terms.keys().map(|m| (m.clone(), 1)).collect(),
        }
    }

    /// Fully idempotent quotient (coefficients and exponents to 1):
    /// the PosBool\[X\]-style normal form.
    pub fn squash(&self) -> Self {
        let mut terms: BTreeMap<Monomial<T>, u64> = BTreeMap::new();
        for m in self.terms.keys() {
            terms.insert(m.squash_exponents(), 1);
        }
        Polynomial { terms }
    }

    /// Evaluate under a token valuation — the universal homomorphism
    /// from `ℕ[X]` into `S`.
    pub fn eval<S: CommutativeSemiring>(&self, mut f: impl FnMut(&T) -> S) -> S {
        let mut acc = S::zero();
        for (m, c) in &self.terms {
            let v = m.eval(&mut f);
            for _ in 0..*c {
                acc = acc.plus(&v);
            }
        }
        acc
    }
}

impl<T: Ord + Clone> CommutativeSemiring for Polynomial<T>
where
    T: fmt::Debug,
{
    fn zero() -> Self {
        Polynomial::zero()
    }
    fn one() -> Self {
        Polynomial::one()
    }
    fn plus(&self, other: &Self) -> Self {
        let mut terms = self.terms.clone();
        for (m, c) in &other.terms {
            *terms.entry(m.clone()).or_insert(0) += c;
        }
        Polynomial { terms }
    }
    fn times(&self, other: &Self) -> Self {
        let mut terms: BTreeMap<Monomial<T>, u64> = BTreeMap::new();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                *terms.entry(m1.times(m2)).or_insert(0) += c1 * c2;
            }
        }
        Polynomial { terms }
    }
}

impl<T: Ord + Clone + fmt::Display> fmt::Display for Polynomial<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        let mut first = true;
        for (m, c) in &self.terms {
            if !first {
                f.write_str(" + ")?;
            }
            first = false;
            if *c != 1 {
                write!(f, "{c}")?;
                if !m.is_unit() {
                    f.write_str("·")?;
                }
            }
            if *c == 1 || !m.is_unit() {
                write!(f, "{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{Bool, Natural, Why};
    use crate::traits::laws;

    fn x() -> Polynomial<&'static str> {
        Polynomial::token("x")
    }
    fn y() -> Polynomial<&'static str> {
        Polynomial::token("y")
    }
    fn z() -> Polynomial<&'static str> {
        Polynomial::token("z")
    }

    #[test]
    fn semiring_laws_on_small_polynomials() {
        let samples = [
            Polynomial::zero(),
            Polynomial::one(),
            x(),
            x().plus(&y()),
            x().times(&y()).plus(&z()),
            x().times(&x()),
        ];
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    assert_eq!(laws::check_axioms(a, b, c), None);
                }
            }
        }
    }

    #[test]
    fn display_is_readable() {
        let p = x()
            .times(&x())
            .plus(&x().times(&y()))
            .plus(&x().times(&y()));
        assert_eq!(p.to_string(), "2·x·y + x^2");
        assert_eq!(Polynomial::<&str>::zero().to_string(), "0");
        assert_eq!(Polynomial::<&str>::one().to_string(), "1");
    }

    #[test]
    fn eval_to_naturals_counts_derivations() {
        // (x + y) · z with all tokens valued 1 => 2 derivations
        let p = x().plus(&y()).times(&z());
        assert_eq!(p.eval(|_| Natural(1)), Natural(2));
        // zero out y: 1 derivation
        assert_eq!(
            p.eval(|t| if *t == "y" { Natural(0) } else { Natural(1) }),
            Natural(1)
        );
    }

    #[test]
    fn eval_to_bool_is_satisfiability() {
        let p = x().times(&y());
        assert_eq!(p.eval(|_| Bool(true)), Bool(true));
        assert_eq!(p.eval(|t| Bool(*t != "y")), Bool(false));
    }

    #[test]
    fn eval_to_why_matches_direct_computation() {
        let p = x().plus(&y()).times(&z());
        let direct = Why::token("x")
            .plus(&Why::token("y"))
            .times(&Why::token("z"));
        assert_eq!(p.eval(|t| Why::token(*t)), direct);
    }

    #[test]
    fn eval_is_homomorphic() {
        // h(p1 + p2) = h(p1) + h(p2), h(p1 * p2) = h(p1) * h(p2)
        let p1 = x().plus(&y().times(&y()));
        let p2 = z().plus(&Polynomial::one());
        let val = |t: &&str| Natural(t.len() as u64 + 1);
        assert_eq!(p1.plus(&p2).eval(val), p1.eval(val).plus(&p2.eval(val)));
        assert_eq!(p1.times(&p2).eval(val), p1.eval(val).times(&p2.eval(val)));
    }

    #[test]
    fn squash_models_idempotence() {
        let p = x().plus(&x()).plus(&x().times(&x()));
        let sq = p.squash();
        assert_eq!(sq.num_monomials(), 1);
        assert_eq!(sq, x().squash());
    }

    #[test]
    fn squash_coefficients_only() {
        let p = x().plus(&x()).plus(&x().times(&x()));
        let sc = p.squash_coefficients();
        assert_eq!(sc.num_monomials(), 2); // x and x^2 kept distinct
    }

    #[test]
    fn degree_where_counts_predicate_tokens() {
        let m = Monomial::from_pairs([("v1", 2), ("CR", 1)]);
        assert_eq!(m.degree(), 3);
        assert_eq!(m.degree_where(|t| t.starts_with('v')), 2);
        assert_eq!(m.degree_where(|t| t.starts_with("CR")), 1);
    }

    #[test]
    fn support_lists_all_tokens() {
        let p = x().times(&y()).plus(&z());
        let mut s = p.support();
        s.sort();
        assert_eq!(s, vec![&"x", &"y", &"z"]);
    }
}
