//! Tuples: ordered sequences of [`Value`]s.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// A relational tuple. Cheap to clone (values are scalars or
/// reference-counted strings).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Arity of the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Is the tuple empty (arity 0)?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at a position, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All values, in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the underlying vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Project onto the given positions (positions must be in range).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(positions.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Iterate over values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values.iter()
    }

    /// Rough resident size in bytes (inline enum slots plus string
    /// heap payloads). String data shared across clones via `Arc` is
    /// counted at every holder — an upper bound, which is the safe
    /// direction for memory budgeting.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Tuple>()
            + self
                .values
                .iter()
                .map(|v| std::mem::size_of::<Value>() + v.heap_bytes())
                .sum::<usize>()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    /// `(v1, v2, ...)` with loader-syntax rendering so keys in error
    /// messages are unambiguous.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}", v.render())?;
        }
        f.write_str(")")
    }
}

/// Build a [`Tuple`] from a list of expressions convertible to
/// [`Value`]: `tuple!["11", "Calcitonin", "gpcr"]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn macro_builds_tuples() {
        let t = tuple!["11", 7, true];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::str("11"));
        assert_eq!(t[1], Value::Int(7));
        assert_eq!(t[2], Value::Bool(true));
    }

    #[test]
    fn project_selects_positions() {
        let t = tuple!["a", "b", "c"];
        assert_eq!(t.project(&[2, 0]), tuple!["c", "a"]);
        assert_eq!(t.project(&[]), Tuple::default());
    }

    #[test]
    fn display_uses_render() {
        let t = tuple!["gp|cr", 3];
        assert_eq!(t.to_string(), "(\"gp|cr\", 3)");
    }

    #[test]
    fn tuples_order_lexicographically() {
        assert!(tuple![1, 2] < tuple![1, 3]);
        assert!(tuple![1] < tuple![1, 0]);
    }

    #[test]
    fn from_iterator_collects() {
        let t: Tuple = (0..3).map(Value::from).collect();
        assert_eq!(t, tuple![0i64, 1i64, 2i64]);
    }
}
