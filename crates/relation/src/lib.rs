//! # fgc-relation — relational substrate for fine-grained data citation
//!
//! In-memory relational storage used by the `fgcite` workspace, a
//! reproduction of *"A Model for Fine-Grained Data Citation"*
//! (Davidson, Deutch, Milo, Silvello — CIDR 2017).
//!
//! The paper assumes "structured, evolving, curated databases": this
//! crate provides typed relations with primary/foreign keys
//! ([`schema`], [`relation`], [`database`]), a plain-text loader
//! ([`loader`]), and — for the paper's *fixity* discussion (§4) —
//! an append-only version chain of immutable snapshots ([`version`]).
//! For serving beyond one node's memory budget, [`sharded`] partitions
//! every relation across hash-routed shards while preserving the
//! global tuple order routed evaluation depends on.
//!
//! ```
//! use fgc_relation::prelude::*;
//!
//! let mut db = Database::new();
//! db.create_relation(RelationSchema::with_names(
//!     "Family",
//!     &[("FID", DataType::Str), ("FName", DataType::Str), ("Type", DataType::Str)],
//!     &["FID"],
//! ).unwrap()).unwrap();
//! db.insert("Family", tuple!["11", "Calcitonin", "gpcr"]).unwrap();
//! assert_eq!(db.relation("Family").unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod database;
pub mod delta;
pub mod error;
pub mod loader;
pub mod relation;
pub mod schema;
pub mod sharded;
pub mod storage;
pub mod tuple;
pub mod value;
pub mod version;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::database::Database;
    pub use crate::delta::{DatabaseDelta, DeltaOp, RelationDelta};
    pub use crate::error::{RelationError, Result as RelationResult};
    pub use crate::relation::Relation;
    pub use crate::schema::{Attribute, Catalog, ForeignKey, RelationSchema};
    pub use crate::sharded::{ShardKeySpec, ShardStats, ShardedDatabase};
    pub use crate::storage::{Storage, StorageKind, StorageOptions, StorageStats};
    pub use crate::tuple;
    pub use crate::tuple::Tuple;
    pub use crate::value::{DataType, Value};
    pub use crate::version::{VersionId, VersionInfo, VersionedDatabase};
}

pub use database::Database;
pub use delta::{DatabaseDelta, DeltaOp, RelationDelta};
pub use error::RelationError;
pub use relation::Relation;
pub use schema::{Attribute, Catalog, ForeignKey, RelationSchema};
pub use sharded::{ShardKeySpec, ShardStats, ShardedDatabase};
pub use storage::{
    DiskStorage, FaultVfs, MemSegment, MemStorage, RealVfs, Storage, StorageHealth, StorageKind,
    StorageOptions, StorageStats, Vfs,
};
pub use tuple::Tuple;
pub use value::{DataType, Value};
pub use version::{VersionId, VersionInfo, VersionedDatabase};
