//! The filesystem seam under [`super::DiskStorage`].
//!
//! Every byte the disk backend moves goes through a [`Vfs`] — a small
//! path-level trait over the operations the segment/WAL/manifest
//! layout actually needs (create-dir, whole-file and positional
//! reads, create-write, positional append, truncate, fsync, rename,
//! remove). [`RealVfs`] is the production passthrough to `std::fs`.
//! [`FaultVfs`] wraps any other `Vfs` and consults an
//! [`fgc_fault::FaultPlane`] before each operation, deriving a named
//! fault point from the operation kind and the file class
//! (`storage.<op>.<class>`, e.g. `storage.append.wal`,
//! `storage.rename.manifest`). Armed points can inject io-errors,
//! torn (half-persisted) writes, and simulated kills; a kill poisons
//! the whole VFS so every subsequent operation fails, exactly like a
//! dead process — the crash-consistency harness then cold-reopens the
//! directory through a fresh `RealVfs` and asserts the store
//! recovered to the last durable version or refused with a structured
//! error.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fgc_fault::{FaultAction, FaultPlane};

/// Path-level filesystem operations the disk backend is written
/// against. Implementations must be shareable across threads; all
/// methods take `&self`.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// `fs::create_dir_all`.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Fill `buf` from `path` starting at byte `offset`.
    fn read_at(&self, path: &Path, offset: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Current length of `path` in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;
    /// Create (or truncate) `path` and write all of `data`. No fsync.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Append `data` at exactly byte `offset`, first truncating
    /// anything past it (so manifest offsets and bytes cannot
    /// drift). Creates the file when missing. No fsync.
    fn append_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()>;
    /// Truncate (or create) `path` to `len` bytes. No fsync.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// fsync `path`'s contents to stable media.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// fsync a directory (making renames within it durable). Best
    /// effort on filesystems that refuse directory handles.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Atomically rename `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Sum of file sizes directly inside `dir` (for stats; 0 when the
    /// directory is unreadable).
    fn dir_size(&self, dir: &Path) -> u64;
}

/// The production [`Vfs`]: a direct passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn read_at(&self, path: &Path, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let mut f = File::open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(data)
    }

    fn append_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        f.set_len(offset)?;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(data)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        f.set_len(len)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        // Some filesystems refuse to open or fsync directories; the
        // rename itself is still atomic there, so this stays best
        // effort exactly like the pre-seam behavior.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn dir_size(&self, dir: &Path) -> u64 {
        let mut total = 0u64;
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                total += entry.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
        total
    }
}

/// Classify a path into the file class used in fault-point names.
fn file_class(path: &Path) -> &'static str {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name == "MANIFEST" {
        "manifest"
    } else if name == "MANIFEST.tmp" {
        "manifest.tmp"
    } else if name == "wal.log" {
        "wal"
    } else if name.ends_with(".seg") {
        "segment"
    } else if name.ends_with(".tmp") {
        "segment.tmp"
    } else if name == ".write-probe" {
        "probe"
    } else {
        "dir"
    }
}

/// A fault-injecting [`Vfs`] wrapper. Every operation consults the
/// plane at point `storage.<op>.<class>`; see the module docs for the
/// crash/torn semantics.
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    plane: Arc<FaultPlane>,
    /// Set by a crash action: the simulated process is dead, every
    /// further operation fails.
    dead: AtomicBool,
}

impl fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultVfs")
            .field("dead", &self.dead.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FaultVfs {
    /// Wrap `inner`, consulting `plane` before each operation.
    pub fn new(inner: Arc<dyn Vfs>, plane: Arc<FaultPlane>) -> Self {
        FaultVfs {
            inner,
            plane,
            dead: AtomicBool::new(false),
        }
    }

    /// Wrap [`RealVfs`] — the common harness shape.
    pub fn over_real(plane: Arc<FaultPlane>) -> Self {
        FaultVfs::new(Arc::new(RealVfs), plane)
    }

    /// Whether a crash action has fired (the simulated process died).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    fn dead_error() -> io::Error {
        io::Error::other("simulated crash: process is dead")
    }

    /// The pre-op gate shared by every non-write operation: checks
    /// poisoning, then asks the plane. `Torn` on a non-write site
    /// degrades to `Error`; crashes poison the VFS.
    fn gate(&self, op: &'static str, path: &Path) -> io::Result<()> {
        if self.is_dead() {
            return Err(Self::dead_error());
        }
        let point = format!("storage.{op}.{}", file_class(path));
        match self.plane.check(&point) {
            None => Ok(()),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(FaultAction::Error) | Some(FaultAction::Torn) => {
                Err(fgc_fault::injected_error(&point))
            }
            Some(FaultAction::CrashBefore) | Some(FaultAction::CrashAfter) => {
                // For an op with no side effect, before/after are the
                // same observable event: the op fails, process dies.
                self.dead.store(true, Ordering::Relaxed);
                Err(io::Error::other(format!("simulated crash at `{point}`")))
            }
        }
    }

    /// The gate for write-like operations, where before/after and
    /// torn differ. `perform` runs the real operation over the bytes
    /// it is given.
    fn gated_write(
        &self,
        op: &'static str,
        path: &Path,
        data: &[u8],
        perform: impl FnOnce(&[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        if self.is_dead() {
            return Err(Self::dead_error());
        }
        let point = format!("storage.{op}.{}", file_class(path));
        match self.plane.check(&point) {
            None => perform(data),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                perform(data)
            }
            Some(FaultAction::Error) => Err(fgc_fault::injected_error(&point)),
            Some(FaultAction::CrashBefore) => {
                self.dead.store(true, Ordering::Relaxed);
                Err(io::Error::other(format!(
                    "simulated crash before `{point}`"
                )))
            }
            Some(FaultAction::CrashAfter) => {
                perform(data)?;
                self.dead.store(true, Ordering::Relaxed);
                Err(io::Error::other(format!("simulated crash after `{point}`")))
            }
            Some(FaultAction::Torn) => {
                // Half the bytes land, then the process dies — the
                // classic torn write.
                perform(&data[..data.len() / 2])?;
                self.dead.store(true, Ordering::Relaxed);
                Err(io::Error::other(format!(
                    "simulated torn write at `{point}`"
                )))
            }
        }
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.gate("mkdir", dir)?;
        self.inner.create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.gate("read", path)?;
        self.inner.read(path)
    }

    fn read_at(&self, path: &Path, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.gate("read", path)?;
        self.inner.read_at(path, offset, buf)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        self.gate("len", path)?;
        self.inner.len(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.gated_write("write", path, data, |bytes| self.inner.write(path, bytes))
    }

    fn append_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()> {
        self.gated_write("append", path, data, |bytes| {
            self.inner.append_at(path, offset, bytes)
        })
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.gate("truncate", path)?;
        self.inner.truncate(path, len)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.gate("fsync", path)?;
        self.inner.fsync(path)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        self.gate("fsync-dir", dir)?;
        self.inner.fsync_dir(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        // Named by the destination: renaming MANIFEST.tmp onto
        // MANIFEST is the commit point, and `storage.rename.manifest`
        // is the name a harness wants to kill at.
        self.gate("rename", to)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate("remove", path)?;
        self.inner.remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        !self.is_dead() && self.inner.exists(path)
    }

    fn dir_size(&self, dir: &Path) -> u64 {
        self.inner.dir_size(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgc_fault::Trigger;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU64;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("fgc-vfs-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn real_vfs_round_trips_and_appends_at_offsets() {
        let dir = temp_dir("real");
        let vfs = RealVfs;
        vfs.create_dir_all(&dir).unwrap();
        let f = dir.join("wal.log");
        vfs.write(&f, b"hello world").unwrap();
        assert_eq!(vfs.read(&f).unwrap(), b"hello world");
        assert_eq!(vfs.len(&f).unwrap(), 11);
        let mut buf = [0u8; 5];
        vfs.read_at(&f, 6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        // append_at truncates past the offset first
        vfs.append_at(&f, 5, b"!!!").unwrap();
        assert_eq!(vfs.read(&f).unwrap(), b"hello!!!");
        vfs.truncate(&f, 5).unwrap();
        assert_eq!(vfs.read(&f).unwrap(), b"hello");
        vfs.fsync(&f).unwrap();
        vfs.fsync_dir(&dir).unwrap();
        let g = dir.join("MANIFEST");
        vfs.rename(&f, &g).unwrap();
        assert!(vfs.exists(&g) && !vfs.exists(&f));
        assert_eq!(vfs.dir_size(&dir), 5);
        vfs.remove_file(&g).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_classes_name_the_layout() {
        for (path, class) in [
            ("d/MANIFEST", "manifest"),
            ("d/MANIFEST.tmp", "manifest.tmp"),
            ("d/wal.log", "wal"),
            ("d/segments/v3.seg", "segment"),
            ("d/segments/v3.tmp", "segment.tmp"),
            ("d/.write-probe", "probe"),
            ("d/segments", "dir"),
        ] {
            assert_eq!(file_class(Path::new(path)), class, "{path}");
        }
    }

    #[test]
    fn injected_error_fires_without_touching_disk() {
        let dir = temp_dir("err");
        fs::create_dir_all(&dir).unwrap();
        let plane = Arc::new(FaultPlane::new());
        plane.arm("storage.write.wal", FaultAction::Error, Trigger::Always);
        let vfs = FaultVfs::over_real(Arc::clone(&plane));
        let wal = dir.join("wal.log");
        let err = vfs.write(&wal, b"data").unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(!wal.exists(), "injected error must not write");
        assert!(!vfs.is_dead(), "plain errors do not kill the process");
        // other classes are unaffected
        vfs.write(&dir.join("MANIFEST"), b"m").unwrap();
        assert_eq!(plane.injected("storage.write.wal"), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_persists_half_then_poisons() {
        let dir = temp_dir("torn");
        fs::create_dir_all(&dir).unwrap();
        let plane = Arc::new(FaultPlane::new());
        plane.arm("storage.append.wal", FaultAction::Torn, Trigger::Always);
        let vfs = FaultVfs::over_real(Arc::clone(&plane));
        let wal = dir.join("wal.log");
        let err = vfs.append_at(&wal, 0, b"12345678").unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        assert_eq!(fs::read(&wal).unwrap(), b"1234", "half the bytes land");
        assert!(vfs.is_dead());
        let err = vfs.read(&wal).unwrap_err();
        assert!(err.to_string().contains("process is dead"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_and_after_differ_in_durability() {
        let dir = temp_dir("crash");
        fs::create_dir_all(&dir).unwrap();
        let before = dir.join("before.seg");
        let after = dir.join("after.seg");
        {
            let plane = Arc::new(FaultPlane::new());
            plane.arm(
                "storage.write.segment",
                FaultAction::CrashBefore,
                Trigger::Always,
            );
            let vfs = FaultVfs::over_real(plane);
            assert!(vfs.write(&before, b"bytes").is_err());
            assert!(!before.exists(), "crash-before persists nothing");
            assert!(vfs.is_dead());
        }
        {
            let plane = Arc::new(FaultPlane::new());
            plane.arm(
                "storage.write.segment",
                FaultAction::CrashAfter,
                Trigger::Always,
            );
            let vfs = FaultVfs::over_real(plane);
            assert!(vfs.write(&after, b"bytes").is_err());
            assert_eq!(
                fs::read(&after).unwrap(),
                b"bytes",
                "crash-after is durable"
            );
            assert!(vfs.is_dead());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn nth_trigger_lets_earlier_ops_through() {
        let dir = temp_dir("nth");
        fs::create_dir_all(&dir).unwrap();
        let plane = Arc::new(FaultPlane::new());
        plane.arm("storage.write.segment", FaultAction::Error, Trigger::Nth(2));
        let vfs = FaultVfs::over_real(Arc::clone(&plane));
        vfs.write(&dir.join("v0.seg"), b"one").unwrap();
        assert!(vfs.write(&dir.join("v1.seg"), b"two").is_err());
        vfs.write(&dir.join("v2.seg"), b"three").unwrap();
        assert_eq!(plane.hits("storage.write.segment"), 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
