//! Pluggable storage backends for version histories.
//!
//! The engine's working representation is and stays in-memory — query
//! evaluation runs over [`crate::Relation`]'s row vectors and hash
//! indexes regardless of backend, which is what keeps citations
//! byte-identical across backends (pinned by
//! `tests/storage_equivalence.rs`). What a [`Storage`] implementation
//! owns is the *system of record* for a [`VersionedDatabase`]: where
//! committed versions live, how they survive a process restart, and
//! what a cold start costs.
//!
//! Two backends ship:
//!
//! * [`MemStorage`] — the reference implementation. The history lives
//!   only in RAM (a mirror of the caller's own chain); restarts
//!   re-run the load path. This is exactly the pre-refactor behavior.
//! * [`DiskStorage`] — append-only segment files plus a write-ahead
//!   log under a data directory. Whole snapshots (version 0,
//!   structural commits, plain [`VersionedDatabase::commit`]s) become
//!   segment files; replayable [`crate::DatabaseDelta`]s from
//!   [`VersionedDatabase::commit_with`] become WAL records. A
//!   manifest, rewritten atomically (temp file + rename), is the
//!   commit point: cold start reads the manifest and reconstructs the
//!   full version chain — segments through a page-granular buffer
//!   cache, deltas by replay — without re-running the text loader.
//!
//! The write path is a deliberate *write-behind*: callers mutate
//! their `VersionedDatabase` first and then [`Storage::sync`] the
//! result. `sync` is idempotent (it persists only versions the
//! backend has not seen) so staged multi-commit loads like
//! [`crate::loader::load_commits`] — which apply commits to a clone
//! and swap on success — persist nothing until the whole load has
//! succeeded.

mod disk;
mod mem;
mod vfs;

pub use disk::DiskStorage;
pub use mem::{MemSegment, MemStorage};
pub use vfs::{FaultVfs, RealVfs, Vfs};

use crate::error::{RelationError, Result};
use crate::version::VersionedDatabase;
use std::fmt;
use std::path::Path;
use std::str::FromStr;
use std::sync::Arc;

/// Which backend a [`Storage`] implementation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageKind {
    /// In-memory reference backend (no persistence).
    Mem,
    /// Disk-backed segments + WAL under a data directory.
    Disk,
}

impl fmt::Display for StorageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StorageKind::Mem => "mem",
            StorageKind::Disk => "disk",
        })
    }
}

impl FromStr for StorageKind {
    type Err = RelationError;
    fn from_str(s: &str) -> Result<Self> {
        match s {
            "mem" => Ok(StorageKind::Mem),
            "disk" => Ok(StorageKind::Disk),
            other => Err(RelationError::Storage(format!(
                "unknown storage backend `{other}` (expected `mem` or `disk`)"
            ))),
        }
    }
}

/// Tuning knobs for disk-backed storage. Degenerate values are
/// guarded, not trusted: a zero cache capacity disables the buffer
/// cache (it never divides by it), and the WAL compaction threshold
/// is floored so a zero or tiny setting cannot make every commit
/// rewrite every segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageOptions {
    /// Buffer-cache page size in bytes (floored to
    /// [`StorageOptions::MIN_PAGE_SIZE`]).
    pub page_size: usize,
    /// Buffer-cache capacity in pages. `0` disables the cache
    /// entirely: every segment read goes to the file.
    pub cache_pages: usize,
    /// WAL size (bytes) past which a sync triggers compaction —
    /// delta-backed versions are folded into full segment files and
    /// the WAL is truncated. Floored to
    /// [`StorageOptions::MIN_WAL_COMPACT_BYTES`].
    pub wal_compact_bytes: u64,
}

impl StorageOptions {
    /// Smallest accepted page size.
    pub const MIN_PAGE_SIZE: usize = 512;
    /// Smallest accepted WAL compaction threshold.
    pub const MIN_WAL_COMPACT_BYTES: u64 = 4096;

    /// Copy with the documented floors applied.
    pub fn clamped(self) -> Self {
        StorageOptions {
            page_size: self.page_size.max(Self::MIN_PAGE_SIZE),
            cache_pages: self.cache_pages,
            wal_compact_bytes: self.wal_compact_bytes.max(Self::MIN_WAL_COMPACT_BYTES),
        }
    }
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            page_size: 4096,
            cache_pages: 256,
            wal_compact_bytes: 16 * 1024 * 1024,
        }
    }
}

/// A point-in-time report of a backend's footprint, surfaced as the
/// `storage` block of `GET /stats` and the `fgcite_storage_*` metric
/// families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageStats {
    /// Which backend produced the report.
    pub kind: StorageKind,
    /// Versions the backend has persisted.
    pub versions: usize,
    /// Versions stored as full segment files.
    pub segments: usize,
    /// Versions stored as WAL delta records.
    pub wal_records: usize,
    /// Current WAL length in bytes.
    pub wal_bytes: u64,
    /// Total bytes on disk (manifest + segments + WAL).
    pub disk_bytes: u64,
    /// Buffer-cache capacity in pages (0 = disabled).
    pub cache_pages: usize,
    /// Buffer-cache hits.
    pub cache_hits: u64,
    /// Buffer-cache misses.
    pub cache_misses: u64,
    /// Completed compactions.
    pub compactions: u64,
}

impl StorageStats {
    /// An all-zero report for the in-memory backend.
    pub fn mem(versions: usize) -> Self {
        StorageStats {
            kind: StorageKind::Mem,
            versions,
            segments: 0,
            wal_records: 0,
            wal_bytes: 0,
            disk_bytes: 0,
            cache_pages: 0,
            cache_hits: 0,
            cache_misses: 0,
            compactions: 0,
        }
    }

    /// Buffer-cache hit rate in `[0, 1]`; `0.0` when the cache has
    /// seen no traffic (never divides by zero).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A durability self-report, surfaced as the `degraded` flag and
/// `causes` list of disk-backed roles' `GET /healthz`. Backends with
/// nothing on disk (e.g. [`MemStorage`]) report `None` from
/// [`Storage::health`] and stay out of the health check entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageHealth {
    /// Whether any degradation cause is present.
    pub degraded: bool,
    /// Human-readable causes, empty when healthy.
    pub causes: Vec<String>,
    /// The manifest on disk currently reads and decodes cleanly (or
    /// has legitimately never been written).
    pub manifest_readable: bool,
    /// The most recent [`Storage::sync`] succeeded.
    pub last_sync_ok: bool,
    /// Current WAL length in bytes (degraded when past the
    /// compaction threshold — compaction should have truncated it).
    pub wal_bytes: u64,
}

/// A backend that persists (or mirrors) a [`VersionedDatabase`].
///
/// Implementations are shared behind `Arc<dyn Storage>` across
/// engines, servers, and CLI paths; every method takes `&self`.
pub trait Storage: Send + Sync + fmt::Debug {
    /// Which backend this is.
    fn kind(&self) -> StorageKind;

    /// Persist every version of `history` the backend has not yet
    /// seen. Idempotent: syncing the same history twice writes
    /// nothing the second time. Errors if `history` is not an
    /// append-only extension of what was previously synced (the
    /// backend refuses to silently fork its system of record):
    /// overlapping versions are verified by metadata *and* snapshot
    /// content — Arc-shared snapshots make the content check a
    /// pointer comparison in the common case. One documented gap:
    /// [`DiskStorage`] freshly opened over an existing manifest has
    /// no in-memory mirror until [`Storage::load_history`] runs, so
    /// until then its overlap check is metadata-only.
    fn sync(&self, history: &VersionedDatabase) -> Result<()>;

    /// Reconstruct the full persisted version chain. For
    /// [`DiskStorage`] this is the cold-start path: segments are read
    /// through the buffer cache and delta-backed versions are
    /// replayed, reproducing snapshots *and* their recorded deltas so
    /// incremental engine derivation keeps working after a restart.
    fn load_history(&self) -> Result<VersionedDatabase>;

    /// Footprint report.
    fn stats(&self) -> StorageStats;

    /// Fold delta-backed versions into full segment files and
    /// truncate the WAL. A no-op for backends without a WAL. Runs
    /// automatically when a sync pushes the WAL past
    /// [`StorageOptions::wal_compact_bytes`].
    fn compact(&self) -> Result<()>;

    /// Durability self-report for `/healthz`. `None` (the default)
    /// means the backend has no durability story to degrade — only
    /// disk-backed implementations return `Some`.
    fn health(&self) -> Option<StorageHealth> {
        None
    }
}

/// Open a storage backend. `dir` is required for (and only used by)
/// [`StorageKind::Disk`]; a missing or unwritable directory is a
/// structured [`RelationError::Storage`], not a panic.
pub fn open(
    kind: StorageKind,
    dir: Option<&Path>,
    options: StorageOptions,
) -> Result<Arc<dyn Storage>> {
    match kind {
        StorageKind::Mem => Ok(Arc::new(MemStorage::new())),
        StorageKind::Disk => {
            let dir = dir.ok_or_else(|| {
                RelationError::Storage(
                    "disk storage requires a data directory (pass --data-dir)".into(),
                )
            })?;
            // Route every byte through the process-wide fault plane
            // so CLI-armed `storage.*` points reach production disk
            // I/O; an inactive plane costs one relaxed atomic load
            // per operation.
            let vfs = Arc::new(FaultVfs::over_real(fgc_fault::global_arc()));
            Ok(Arc::new(DiskStorage::open_with_vfs(dir, options, vfs)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_str() {
        for kind in [StorageKind::Mem, StorageKind::Disk] {
            assert_eq!(kind.to_string().parse::<StorageKind>().unwrap(), kind);
        }
        assert!(matches!(
            "lsm".parse::<StorageKind>(),
            Err(RelationError::Storage(_))
        ));
    }

    #[test]
    fn options_floors_apply() {
        let opts = StorageOptions {
            page_size: 0,
            cache_pages: 0,
            wal_compact_bytes: 0,
        }
        .clamped();
        assert_eq!(opts.page_size, StorageOptions::MIN_PAGE_SIZE);
        assert_eq!(opts.cache_pages, 0, "0 cache pages means disabled, kept");
        assert_eq!(
            opts.wal_compact_bytes,
            StorageOptions::MIN_WAL_COMPACT_BYTES
        );
    }

    #[test]
    fn hit_rate_guards_division_by_zero() {
        let mut stats = StorageStats::mem(3);
        assert_eq!(stats.cache_hit_rate(), 0.0);
        stats.cache_hits = 3;
        stats.cache_misses = 1;
        assert_eq!(stats.cache_hit_rate(), 0.75);
    }

    #[test]
    fn open_disk_without_dir_is_a_structured_error() {
        let err = open(StorageKind::Disk, None, StorageOptions::default()).unwrap_err();
        assert!(err.to_string().contains("--data-dir"), "{err}");
    }
}
