//! The in-memory reference backend.
//!
//! [`MemSegment`] is the row store carved out of [`crate::Relation`]:
//! rows in insertion order, the set-semantics guard, the primary-key
//! index, and secondary postings. `Relation` delegates every data
//! operation to it, so the segment is the single definition of
//! insert/remove/probe semantics that both backends rely on —
//! [`crate::storage::DiskStorage`] reconstructs relations by feeding
//! persisted rows back through the same segment code, which is why a
//! reloaded relation is structurally identical (same row order, same
//! index state) to the one that was persisted.
//!
//! [`MemStorage`] is the trivial [`Storage`] implementation: a
//! mirror of the synced history (snapshots are `Arc`-shared with the
//! caller, so the mirror costs pointers, not copies). It persists
//! nothing across processes — exactly the pre-refactor behavior.

use super::{Storage, StorageKind, StorageStats};
use crate::error::{RelationError, Result};
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::version::VersionedDatabase;
use std::collections::HashMap;
use std::sync::Mutex;

/// An in-memory row segment: ordered rows plus the hash indexes the
/// evaluator probes. Constraint *checking* stays in
/// [`crate::Relation`] (which owns the schema); the segment enforces
/// set semantics and key uniqueness given the schema it is handed.
#[derive(Debug, Clone, Default)]
pub struct MemSegment {
    /// All tuples in insertion order — the global order evaluation,
    /// sharding, and citations rely on.
    rows: Vec<Tuple>,
    /// Set-semantics guard: every stored row, for O(1) duplicate
    /// checks. Values are row positions.
    row_set: HashMap<Tuple, usize>,
    /// Primary-key index: key projection -> row position.
    key_index: HashMap<Tuple, usize>,
    /// Secondary postings: column -> (value -> row positions, in
    /// ascending order).
    secondary: HashMap<usize, HashMap<Value, Vec<usize>>>,
}

impl MemSegment {
    /// An empty segment.
    pub fn new() -> Self {
        MemSegment::default()
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the segment empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All tuples in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Whether an identical tuple is stored.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.row_set.contains_key(tuple)
    }

    /// The stored position of a tuple, if present.
    pub fn position_of(&self, tuple: &Tuple) -> Option<usize> {
        self.row_set.get(tuple).copied()
    }

    /// Look up a row by primary-key projection.
    pub fn get_by_key(&self, key: &Tuple) -> Option<&Tuple> {
        self.key_index.get(key).map(|&i| &self.rows[i])
    }

    /// Insert a tuple whose shape has already been checked against
    /// `schema`. Duplicate tuples are ignored (set semantics);
    /// duplicate *keys* with different non-key columns are an error.
    /// Returns `true` if the tuple was actually added.
    pub fn insert(&mut self, schema: &RelationSchema, tuple: Tuple) -> Result<bool> {
        if self.row_set.contains_key(&tuple) {
            return Ok(false);
        }
        if schema.has_key() {
            let key = tuple.project(&schema.key);
            if self.key_index.contains_key(&key) {
                return Err(RelationError::KeyViolation {
                    relation: schema.name.clone(),
                    key: key.to_string(),
                });
            }
            self.key_index.insert(key, self.rows.len());
        }
        let pos = self.rows.len();
        for (&col, index) in &mut self.secondary {
            index.entry(tuple[col].clone()).or_default().push(pos);
        }
        self.row_set.insert(tuple.clone(), pos);
        self.rows.push(tuple);
        Ok(true)
    }

    /// Remove a stored tuple. Returns `true` if it was present.
    ///
    /// Removal preserves insertion order for the surviving rows: the
    /// row is taken out of the middle and every stored position past
    /// it shifts down — O(rows + index entries) per removal, the
    /// right trade for curated databases whose commits remove a
    /// handful of tuples.
    pub fn remove(&mut self, schema: &RelationSchema, tuple: &Tuple) -> bool {
        let Some(pos) = self.row_set.remove(tuple) else {
            return false;
        };
        self.rows.remove(pos);
        if schema.has_key() {
            self.key_index.remove(&tuple.project(&schema.key));
        }
        for p in self.row_set.values_mut() {
            if *p > pos {
                *p -= 1;
            }
        }
        for p in self.key_index.values_mut() {
            if *p > pos {
                *p -= 1;
            }
        }
        for (&col, index) in &mut self.secondary {
            if let Some(list) = index.get_mut(&tuple[col]) {
                list.retain(|&p| p != pos);
                if list.is_empty() {
                    index.remove(&tuple[col]);
                }
            }
            for list in index.values_mut() {
                for p in list {
                    if *p > pos {
                        *p -= 1;
                    }
                }
            }
        }
        true
    }

    /// Ensure a secondary posting list exists on `column` (assumed in
    /// range). Returns `true` if the index was newly built.
    pub fn build_index(&mut self, column: usize) -> bool {
        if self.secondary.contains_key(&column) {
            return false;
        }
        let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
        for (pos, row) in self.rows.iter().enumerate() {
            index.entry(row[column].clone()).or_default().push(pos);
        }
        self.secondary.insert(column, index);
        true
    }

    /// Columns with a secondary index, ascending.
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.secondary.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// Row positions whose `column` equals `value`, using a secondary
    /// index if one exists, otherwise `None` (caller should scan).
    pub fn probe(&self, column: usize, value: &Value) -> Option<&[usize]> {
        self.secondary
            .get(&column)
            .map(|idx| idx.get(value).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Rough resident size in bytes: row payloads plus the hash-map
    /// entries of the set guard, key index, and secondary postings.
    /// An estimate (hash-table load factors and allocator slack are
    /// not modeled), intended for relative memory reporting.
    pub fn approx_bytes(&self) -> usize {
        let rows: usize = self.rows.iter().map(Tuple::approx_bytes).sum();
        let entry = std::mem::size_of::<(Tuple, usize)>();
        let row_set = self.row_set.len() * entry
            + self
                .row_set
                .keys()
                .map(|t| t.approx_bytes() - std::mem::size_of::<Tuple>())
                .sum::<usize>();
        let key_index = self.key_index.len() * entry
            + self
                .key_index
                .keys()
                .map(|t| t.approx_bytes() - std::mem::size_of::<Tuple>())
                .sum::<usize>();
        let secondary: usize = self
            .secondary
            .values()
            .map(|idx| {
                idx.iter()
                    .map(|(v, list)| {
                        std::mem::size_of::<Value>()
                            + v.heap_bytes()
                            + list.len() * std::mem::size_of::<usize>()
                    })
                    .sum::<usize>()
            })
            .sum();
        rows + row_set + key_index + secondary
    }
}

/// The in-memory [`Storage`] backend: a mirror of the synced history.
#[derive(Debug, Default)]
pub struct MemStorage {
    history: Mutex<VersionedDatabase>,
}

impl MemStorage {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        MemStorage::default()
    }
}

impl Storage for MemStorage {
    fn kind(&self) -> StorageKind {
        StorageKind::Mem
    }

    fn sync(&self, history: &VersionedDatabase) -> Result<()> {
        let mut mirror = self.history.lock().expect("mem storage poisoned");
        if history.len() < mirror.len() {
            return Err(RelationError::Storage(format!(
                "history has {} versions but {} were already synced",
                history.len(),
                mirror.len()
            )));
        }
        // Refuse to fork: every already-synced version must match,
        // metadata and content. Snapshots are Arc-shared, so the
        // common case is a pointer comparison per version.
        for (i, (info, db)) in mirror.iter().enumerate() {
            let (new_info, new_db) = history.snapshot(i as crate::version::VersionId)?;
            if new_info != info {
                return Err(RelationError::Storage(format!(
                    "history diverged from the synced chain at version {i}"
                )));
            }
            if !std::sync::Arc::ptr_eq(new_db, db) && !new_db.content_eq(db) {
                return Err(RelationError::Storage(format!(
                    "history diverged from the synced chain at version {i} \
                     (same metadata, different content)"
                )));
            }
        }
        // Snapshots are Arc-shared: this mirrors pointers, not data.
        *mirror = history.clone();
        Ok(())
    }

    fn load_history(&self) -> Result<VersionedDatabase> {
        Ok(self.history.lock().expect("mem storage poisoned").clone())
    }

    fn stats(&self) -> StorageStats {
        StorageStats::mem(self.history.lock().expect("mem storage poisoned").len())
    }

    fn compact(&self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::tuple;
    use crate::value::DataType;

    fn base() -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::with_names("R", &[("x", DataType::Int)], &["x"]).unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn mem_storage_mirrors_and_reloads() {
        let storage = MemStorage::new();
        let mut h = VersionedDatabase::new();
        h.commit(base(), 100, "v0").unwrap();
        storage.sync(&h).unwrap();
        h.commit_with(200, "v1", |db| db.insert("R", tuple![1]).map(|_| ()))
            .unwrap();
        storage.sync(&h).unwrap();
        // idempotent
        storage.sync(&h).unwrap();
        let loaded = storage.load_history().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.snapshot(1).unwrap().1.total_tuples(), 1);
        assert!(loaded.delta(1).is_some());
        assert_eq!(storage.stats().versions, 2);
        assert_eq!(storage.stats().kind, StorageKind::Mem);
    }

    #[test]
    fn mem_storage_rejects_forked_content_with_matching_metadata() {
        let storage = MemStorage::new();
        let mut h = VersionedDatabase::new();
        h.commit(base(), 100, "v0").unwrap();
        h.commit_with(200, "v1", |db| db.insert("R", tuple![1]).map(|_| ()))
            .unwrap();
        storage.sync(&h).unwrap();
        // same infos (timestamps + labels), different tuple data
        let mut fork = VersionedDatabase::new();
        fork.commit(base(), 100, "v0").unwrap();
        fork.commit_with(200, "v1", |db| db.insert("R", tuple![2]).map(|_| ()))
            .unwrap();
        fork.commit_with(300, "v2", |_| Ok(())).unwrap();
        let err = storage.sync(&fork).unwrap_err();
        assert!(err.to_string().contains("different content"), "{err}");
    }

    #[test]
    fn mem_storage_rejects_shrunk_history() {
        let storage = MemStorage::new();
        let mut h = VersionedDatabase::new();
        h.commit(base(), 100, "v0").unwrap();
        h.commit_with(200, "v1", |_| Ok(())).unwrap();
        storage.sync(&h).unwrap();
        let mut shorter = VersionedDatabase::new();
        shorter.commit(base(), 100, "v0").unwrap();
        assert!(matches!(
            storage.sync(&shorter).unwrap_err(),
            RelationError::Storage(_)
        ));
    }
}
