//! Disk-backed storage: append-only segments + WAL under a manifest.
//!
//! ## On-disk layout
//!
//! ```text
//! <data-dir>/
//!   MANIFEST            # the commit point (rewritten atomically)
//!   wal.log             # checksummed (VersionInfo, DatabaseDelta) records
//!   segments/v<id>.seg  # full snapshot of one version
//! ```
//!
//! Every persisted version is either a **segment** (a full snapshot:
//! version 0, whole commits via [`VersionedDatabase::commit`], and
//! structural commits whose deltas cannot be replayed) or a **WAL
//! record** (the replayable [`DatabaseDelta`] a
//! [`VersionedDatabase::commit_with`] recorded). The `MANIFEST` lists
//! versions in order with a pointer to their source; it is rewritten
//! to a temp file and renamed on every sync, so the rename is the
//! atomic commit point — a crash between a WAL append and the
//! manifest rename leaves trailing WAL bytes that the next open
//! truncates away (and appends always land at the last referenced
//! offset, never blindly at end-of-file, so manifest offsets and the
//! bytes they point at cannot drift apart). Compaction likewise
//! publishes its all-segment manifest *before* truncating the WAL: a
//! crash in between leaves dead WAL bytes, never a manifest pointing
//! into an emptied WAL.
//!
//! ## Durability & fidelity
//!
//! Cold start ([`DiskStorage::load_history`]) replays the manifest in
//! order: segments are decoded through a page-granular buffer cache,
//! delta versions clone the predecessor snapshot and re-apply the
//! delta. Because [`crate::Relation`] insert/remove are deterministic
//! and replay-exact, the reloaded chain is structurally identical to
//! the persisted one — same row order, same index state — which is
//! what keeps citations byte-identical after a restart
//! (`tests/storage_equivalence.rs`). Deltas are preserved across the
//! reload, so incremental engine derivation keeps working; the one
//! deliberate loss is *structural* deltas (they are persisted as full
//! segments and reload with no delta — consumers already rebuild for
//! those).
//!
//! Compaction folds delta versions into full segment files and
//! truncates the WAL (bounding its growth at the cost of the folded
//! deltas); it runs on demand via [`Storage::compact`] and
//! automatically when a sync pushes the WAL past
//! [`StorageOptions::wal_compact_bytes`].
//!
//! The codec is a hand-written length-prefixed little-endian binary
//! format (the workspace is std-only); integers and floats persist
//! their exact 64-bit payloads so `Value` equality, ordering, and
//! hashing survive the round trip bit-for-bit.

use super::vfs::{RealVfs, Vfs};
use super::{Storage, StorageHealth, StorageKind, StorageOptions, StorageStats};
use crate::database::Database;
use crate::delta::{DatabaseDelta, DeltaOp, RelationDelta};
use crate::error::{RelationError, Result};
use crate::schema::{Attribute, ForeignKey, RelationSchema};
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use crate::version::{VersionId, VersionInfo, VersionedDatabase};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const MANIFEST_MAGIC: &[u8; 8] = b"FGCMANI1";
const SEGMENT_MAGIC: &[u8; 8] = b"FGCSEGM1";
const MANIFEST_FILE: &str = "MANIFEST";
const WAL_FILE: &str = "wal.log";
const SEGMENT_DIR: &str = "segments";

fn io_err(context: impl std::fmt::Display, e: std::io::Error) -> RelationError {
    RelationError::Storage(format!("{context}: {e}"))
}

fn corrupt(what: impl std::fmt::Display) -> RelationError {
    RelationError::Storage(format!("corrupt {what}"))
}

/// FNV-1a 64-bit — the same family the shard router uses; good
/// enough to catch torn or bit-rotted WAL records.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Bool(b) => {
            put_u8(buf, 1);
            put_u8(buf, u8::from(*b));
        }
        Value::Int(i) => {
            put_u8(buf, 2);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            put_u8(buf, 3);
            put_u64(buf, f.to_bits());
        }
        Value::Str(s) => {
            put_u8(buf, 4);
            put_str(buf, s);
        }
    }
}

fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u32(buf, t.arity() as u32);
    for v in t.iter() {
        put_value(buf, v);
    }
}

fn data_type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Str => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Bool => 3,
        DataType::Any => 4,
    }
}

fn put_schema(buf: &mut Vec<u8>, s: &RelationSchema) {
    put_str(buf, &s.name);
    put_u32(buf, s.attributes.len() as u32);
    for a in &s.attributes {
        put_str(buf, &a.name);
        put_u8(buf, data_type_tag(a.ty));
    }
    put_u32(buf, s.key.len() as u32);
    for &k in &s.key {
        put_u32(buf, k as u32);
    }
    put_u32(buf, s.foreign_keys.len() as u32);
    for fk in &s.foreign_keys {
        put_u32(buf, fk.columns.len() as u32);
        for &c in &fk.columns {
            put_u32(buf, c as u32);
        }
        put_str(buf, &fk.references);
    }
}

fn put_info(buf: &mut Vec<u8>, info: &VersionInfo) {
    put_u64(buf, info.id);
    put_u64(buf, info.timestamp);
    put_str(buf, &info.label);
}

fn put_delta(buf: &mut Vec<u8>, delta: &DatabaseDelta) {
    put_u8(buf, u8::from(delta.is_structural()));
    let relations: Vec<&RelationDelta> = delta.relations().collect();
    put_u32(buf, relations.len() as u32);
    for rd in relations {
        put_str(buf, &rd.relation);
        put_u32(buf, rd.ops.len() as u32);
        for op in &rd.ops {
            match op {
                DeltaOp::Insert(t) => {
                    put_u8(buf, 0);
                    put_tuple(buf, t);
                }
                DeltaOp::Remove(t) => {
                    put_u8(buf, 1);
                    put_tuple(buf, t);
                }
            }
        }
    }
}

/// Cursor over an encoded byte buffer; every read is bounds-checked
/// and reports what it was decoding on failure.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'a str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], what: &'a str) -> Self {
        Reader { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt(format!("{}: truncated at byte {}", self.what, self.pos)))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Capacity hint for `declared` elements of at least `min_size`
    /// encoded bytes each, clamped by the bytes actually remaining —
    /// a corrupt or hostile length prefix yields the structured
    /// truncation error downstream instead of a multi-gigabyte
    /// allocation here.
    fn capacity_hint(&self, declared: usize, min_size: usize) -> usize {
        declared.min((self.buf.len() - self.pos) / min_size.max(1))
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| corrupt(format!("{}: invalid utf-8 string", self.what)))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Str(Arc::from(self.string()?.as_str())),
            tag => return Err(corrupt(format!("{}: unknown value tag {tag}", self.what))),
        })
    }

    fn tuple(&mut self) -> Result<Tuple> {
        let arity = self.u32()? as usize;
        let mut values = Vec::with_capacity(self.capacity_hint(arity, 1));
        for _ in 0..arity {
            values.push(self.value()?);
        }
        Ok(Tuple::new(values))
    }

    fn data_type(&mut self) -> Result<DataType> {
        Ok(match self.u8()? {
            0 => DataType::Str,
            1 => DataType::Int,
            2 => DataType::Float,
            3 => DataType::Bool,
            4 => DataType::Any,
            tag => return Err(corrupt(format!("{}: unknown type tag {tag}", self.what))),
        })
    }

    fn schema(&mut self) -> Result<RelationSchema> {
        let name = self.string()?;
        let n_attrs = self.u32()? as usize;
        let mut attributes = Vec::with_capacity(self.capacity_hint(n_attrs, 5));
        for _ in 0..n_attrs {
            let attr_name = self.string()?;
            let ty = self.data_type()?;
            attributes.push(Attribute::new(attr_name, ty));
        }
        let n_key = self.u32()? as usize;
        let mut key = Vec::with_capacity(self.capacity_hint(n_key, 4));
        for _ in 0..n_key {
            key.push(self.u32()? as usize);
        }
        let mut schema = RelationSchema::new(name, attributes, key)?;
        let n_fks = self.u32()? as usize;
        for _ in 0..n_fks {
            let n_cols = self.u32()? as usize;
            let mut columns = Vec::with_capacity(self.capacity_hint(n_cols, 4));
            for _ in 0..n_cols {
                columns.push(self.u32()? as usize);
            }
            let references = self.string()?;
            schema.foreign_keys.push(ForeignKey {
                columns,
                references,
            });
        }
        Ok(schema)
    }

    fn info(&mut self) -> Result<VersionInfo> {
        Ok(VersionInfo {
            id: self.u64()?,
            timestamp: self.u64()?,
            label: self.string()?,
        })
    }

    fn delta(&mut self) -> Result<DatabaseDelta> {
        let structural = self.u8()? != 0;
        let n_rels = self.u32()? as usize;
        let mut relations = Vec::with_capacity(self.capacity_hint(n_rels, 8));
        for _ in 0..n_rels {
            let relation = self.string()?;
            let n_ops = self.u32()? as usize;
            let mut ops = Vec::with_capacity(self.capacity_hint(n_ops, 5));
            for _ in 0..n_ops {
                let tag = self.u8()?;
                let tuple = self.tuple()?;
                ops.push(match tag {
                    0 => DeltaOp::Insert(tuple),
                    1 => DeltaOp::Remove(tuple),
                    t => return Err(corrupt(format!("{}: unknown op tag {t}", self.what))),
                });
            }
            relations.push(RelationDelta { relation, ops });
        }
        Ok(DatabaseDelta::new(relations, structural))
    }
}

/// Serialize a full snapshot: catalog in registration order, then per
/// relation its indexed columns and rows in insertion order.
fn encode_segment(db: &Database) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SEGMENT_MAGIC);
    let schemas: Vec<_> = db.schemas().collect();
    put_u32(&mut buf, schemas.len() as u32);
    for schema in schemas {
        let relation = db.relation(&schema.name)?;
        put_schema(&mut buf, schema);
        let indexed = relation.indexed_columns();
        put_u32(&mut buf, indexed.len() as u32);
        for col in indexed {
            put_u32(&mut buf, col as u32);
        }
        put_u64(&mut buf, relation.len() as u64);
        for row in relation.iter() {
            put_tuple(&mut buf, row);
        }
    }
    Ok(buf)
}

/// Rebuild a snapshot by feeding persisted rows back through the
/// normal insert path — the reload is structurally identical (same
/// row order, same index state) to the database that was encoded.
fn decode_segment(bytes: &[u8]) -> Result<Database> {
    let mut r = Reader::new(bytes, "segment");
    if r.take(SEGMENT_MAGIC.len())? != SEGMENT_MAGIC {
        return Err(corrupt("segment: bad magic"));
    }
    let n_relations = r.u32()? as usize;
    let mut db = Database::new();
    for _ in 0..n_relations {
        let schema = r.schema()?;
        let name = schema.name.clone();
        db.create_relation(schema)?;
        let n_indexed = r.u32()? as usize;
        let mut indexed = Vec::with_capacity(r.capacity_hint(n_indexed, 4));
        for _ in 0..n_indexed {
            indexed.push(r.u32()? as usize);
        }
        let n_rows = r.u64()? as usize;
        let relation = db.relation_mut(&name)?;
        for col in indexed {
            relation.build_index(col)?;
        }
        for _ in 0..n_rows {
            let row = r.tuple()?;
            relation.insert(row)?;
        }
    }
    if !r.done() {
        return Err(corrupt("segment: trailing bytes"));
    }
    Ok(db)
}

// ---------------------------------------------------------------
// Buffer cache
// ---------------------------------------------------------------

/// Page key: (segment version id, page number).
type PageKey = (u64, u64);

#[derive(Debug)]
struct PageSlot {
    key: PageKey,
    data: Arc<Vec<u8>>,
    referenced: bool,
}

/// A small CLOCK (second-chance) page cache over segment files.
/// Capacity 0 disables it outright — `get` and `put` return
/// immediately and no arithmetic ever involves the capacity, the
/// same degenerate-capacity contract as the citation token cache.
#[derive(Debug)]
struct PageCache {
    capacity: usize,
    slots: Vec<PageSlot>,
    map: HashMap<PageKey, usize>,
    hand: usize,
    hits: u64,
    misses: u64,
}

impl PageCache {
    fn new(capacity: usize) -> Self {
        PageCache {
            capacity,
            slots: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn get(&mut self, key: PageKey) -> Option<Arc<Vec<u8>>> {
        if self.capacity == 0 {
            return None;
        }
        match self.map.get(&key) {
            Some(&i) => {
                self.slots[i].referenced = true;
                self.hits += 1;
                Some(Arc::clone(&self.slots[i].data))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, key: PageKey, data: Arc<Vec<u8>>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].data = data;
            self.slots[i].referenced = true;
            return;
        }
        if self.slots.len() < self.capacity {
            self.map.insert(key, self.slots.len());
            self.slots.push(PageSlot {
                key,
                data,
                referenced: true,
            });
            return;
        }
        loop {
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            if self.slots[self.hand].referenced {
                self.slots[self.hand].referenced = false;
                self.hand += 1;
            } else {
                let victim = self.hand;
                self.map.remove(&self.slots[victim].key);
                self.map.insert(key, victim);
                self.slots[victim] = PageSlot {
                    key,
                    data,
                    referenced: true,
                };
                self.hand = victim + 1;
                return;
            }
        }
    }
}

// ---------------------------------------------------------------
// DiskStorage
// ---------------------------------------------------------------

/// Where one persisted version's data lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VersionSource {
    /// Full snapshot in `segments/v<id>.seg`.
    Segment,
    /// WAL record: byte offset of the record header and payload size.
    Delta { offset: u64, payload_len: u32 },
}

#[derive(Debug, Clone)]
struct ManifestEntry {
    info: VersionInfo,
    source: VersionSource,
}

#[derive(Debug)]
struct DiskInner {
    entries: Vec<ManifestEntry>,
    /// Referenced WAL bytes — also the exact offset the next record
    /// is written at (trailing unreferenced bytes from an interrupted
    /// sync are truncated at open and before each append).
    wal_len: u64,
    compactions: u64,
    /// Arc-shared copy of the last synced or loaded history — what
    /// compaction folds into segments.
    mirror: VersionedDatabase,
}

/// The disk-backed [`Storage`] implementation. See the module docs
/// for the layout and durability story.
#[derive(Debug)]
pub struct DiskStorage {
    dir: PathBuf,
    options: StorageOptions,
    /// Every byte this backend moves goes through the VFS seam —
    /// [`RealVfs`] in production, a fault-injecting wrapper under the
    /// crash-consistency harness.
    vfs: Arc<dyn Vfs>,
    inner: Mutex<DiskInner>,
    cache: Mutex<PageCache>,
    /// Whether the most recent [`Storage::sync`] succeeded — part of
    /// the `/healthz` degradation report.
    last_sync_ok: AtomicBool,
    /// The message of the last failed sync, for the health causes.
    last_sync_error: Mutex<Option<String>>,
}

impl DiskStorage {
    /// Open (or initialize) a data directory. The directory is
    /// created if missing; an uncreatable or unwritable path is a
    /// structured [`RelationError::Storage`], never a panic. If a
    /// `MANIFEST` is present the persisted version chain becomes
    /// available to [`Storage::load_history`] without re-running any
    /// loader.
    pub fn open(dir: impl AsRef<Path>, options: StorageOptions) -> Result<Self> {
        Self::open_with_vfs(dir, options, Arc::new(RealVfs))
    }

    /// [`DiskStorage::open`] over an explicit [`Vfs`] — the seam the
    /// crash-consistency harness uses to interpose a fault-injecting
    /// filesystem. Production callers use [`DiskStorage::open`].
    pub fn open_with_vfs(
        dir: impl AsRef<Path>,
        options: StorageOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let options = options.clamped();
        if dir.exists() && !dir.is_dir() {
            return Err(RelationError::Storage(format!(
                "data dir `{}` exists but is not a directory",
                dir.display()
            )));
        }
        vfs.create_dir_all(&dir.join(SEGMENT_DIR))
            .map_err(|e| io_err(format!("cannot create data dir `{}`", dir.display()), e))?;
        // Probe writability up front so a read-only mount fails at
        // open time with a clear message, not mid-commit.
        let probe = dir.join(".write-probe");
        vfs.write(&probe, b"")
            .map_err(|e| io_err(format!("data dir `{}` is not writable", dir.display()), e))?;
        let _ = vfs.remove_file(&probe);
        let manifest_path = dir.join(MANIFEST_FILE);
        let entries = if vfs.exists(&manifest_path) {
            let bytes = vfs
                .read(&manifest_path)
                .map_err(|e| io_err(format!("cannot read `{}`", manifest_path.display()), e))?;
            decode_manifest(&bytes)?
        } else {
            Vec::new()
        };
        let wal_len = entries
            .iter()
            .filter_map(|e| match e.source {
                VersionSource::Delta {
                    offset,
                    payload_len,
                } => Some(offset + wal_record_len(payload_len)),
                VersionSource::Segment => None,
            })
            .max()
            .unwrap_or(0);
        // Drop WAL bytes past the last manifest-referenced record
        // (leftovers of a crash between a WAL append and the manifest
        // rename). Future appends then land exactly at `wal_len`, so
        // the offsets the next manifest records always point at the
        // bytes that were actually written. A WAL *shorter* than
        // `wal_len` is left alone: extending it would only turn a
        // clean read-error into a checksum mismatch at load time.
        let wal_path = dir.join(WAL_FILE);
        if let Ok(len) = vfs.len(&wal_path) {
            if len > wal_len {
                vfs.truncate(&wal_path, wal_len)
                    .and_then(|()| vfs.fsync(&wal_path))
                    .map_err(|e| io_err("cannot drop trailing WAL bytes", e))?;
            }
        }
        Ok(DiskStorage {
            dir,
            vfs,
            cache: Mutex::new(PageCache::new(options.cache_pages)),
            options,
            inner: Mutex::new(DiskInner {
                entries,
                wal_len,
                compactions: 0,
                mirror: VersionedDatabase::new(),
            }),
            last_sync_ok: AtomicBool::new(true),
            last_sync_error: Mutex::new(None),
        })
    }

    /// The data directory this backend persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    fn segment_path(&self, id: VersionId) -> PathBuf {
        self.dir.join(SEGMENT_DIR).join(format!("v{id}.seg"))
    }

    /// Write `bytes` to `path` atomically: temp file, fsync, rename.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let tmp = path.with_extension("tmp");
        self.vfs
            .write(&tmp, bytes)
            .and_then(|()| self.vfs.fsync(&tmp))
            .map_err(|e| io_err(format!("cannot write `{}`", tmp.display()), e))?;
        self.vfs
            .rename(&tmp, path)
            .map_err(|e| io_err(format!("cannot rename into `{}`", path.display()), e))?;
        // Make the rename durable: fsync the containing directory.
        if let Some(parent) = path.parent() {
            self.vfs
                .fsync_dir(parent)
                .map_err(|e| io_err(format!("cannot sync dir `{}`", parent.display()), e))?;
        }
        Ok(())
    }

    fn write_segment(&self, id: VersionId, db: &Database) -> Result<()> {
        let bytes = encode_segment(db)?;
        self.write_atomic(&self.segment_path(id), &bytes)
    }

    fn write_manifest(&self, entries: &[ManifestEntry]) -> Result<()> {
        self.write_atomic(&self.dir.join(MANIFEST_FILE), &encode_manifest(entries))
    }

    /// Read one segment file page-by-page through the buffer cache.
    fn read_segment_bytes(&self, id: VersionId) -> Result<Vec<u8>> {
        let path = self.segment_path(id);
        let len = self
            .vfs
            .len(&path)
            .map_err(|e| io_err(format!("missing segment `{}`", path.display()), e))?
            as usize;
        let page_size = self.options.page_size;
        let mut out = Vec::with_capacity(len);
        for page_no in 0..len.div_ceil(page_size) {
            let key = (id, page_no as u64);
            let cached = self.cache.lock().expect("page cache poisoned").get(key);
            let data = match cached {
                Some(d) => d,
                None => {
                    let start = page_no * page_size;
                    let take = page_size.min(len - start);
                    let mut buf = vec![0u8; take];
                    self.vfs
                        .read_at(&path, start as u64, &mut buf)
                        .map_err(|e| {
                            io_err(format!("cannot read segment `{}`", path.display()), e)
                        })?;
                    let arc = Arc::new(buf);
                    self.cache
                        .lock()
                        .expect("page cache poisoned")
                        .put(key, Arc::clone(&arc));
                    arc
                }
            };
            out.extend_from_slice(&data);
        }
        Ok(out)
    }

    fn read_wal_record(
        &self,
        offset: u64,
        payload_len: u32,
    ) -> Result<(VersionInfo, DatabaseDelta)> {
        let path = self.wal_path();
        // Bounds-check the declared record extent against the real
        // file before allocating the payload buffer: a corrupt
        // manifest cannot demand a multi-gigabyte allocation.
        let file_len = self
            .vfs
            .len(&path)
            .map_err(|e| io_err(format!("cannot stat WAL `{}`", path.display()), e))?;
        if offset
            .checked_add(wal_record_len(payload_len))
            .is_none_or(|end| end > file_len)
        {
            return Err(corrupt(format!(
                "WAL record at {offset}: extends past the {file_len}-byte WAL"
            )));
        }
        let mut header = [0u8; 12];
        self.vfs
            .read_at(&path, offset, &mut header)
            .map_err(|e| io_err("cannot read WAL record header", e))?;
        let stored_len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let checksum = u64::from_le_bytes(header[4..12].try_into().unwrap());
        if stored_len != payload_len {
            return Err(corrupt(format!(
                "WAL record at {offset}: length {stored_len} != manifest {payload_len}"
            )));
        }
        let mut payload = vec![0u8; payload_len as usize];
        self.vfs
            .read_at(&path, offset + 12, &mut payload)
            .map_err(|e| io_err("cannot read WAL record payload", e))?;
        if fnv64(&payload) != checksum {
            return Err(corrupt(format!(
                "WAL record at {offset}: checksum mismatch"
            )));
        }
        let mut r = Reader::new(&payload, "WAL record");
        let info = r.info()?;
        let delta = r.delta()?;
        if !r.done() {
            return Err(corrupt("WAL record: trailing bytes"));
        }
        Ok((info, delta))
    }

    /// Reconstruct the chain described by `entries` (manifest order).
    fn load_from_entries(&self, entries: &[ManifestEntry]) -> Result<VersionedDatabase> {
        let mut history = VersionedDatabase::new();
        for entry in entries {
            match entry.source {
                VersionSource::Segment => {
                    let bytes = self.read_segment_bytes(entry.info.id)?;
                    let db = decode_segment(&bytes)?;
                    history.restore(entry.info.clone(), Arc::new(db), None)?;
                }
                VersionSource::Delta {
                    offset,
                    payload_len,
                } => {
                    let (wal_info, delta) = self.read_wal_record(offset, payload_len)?;
                    if wal_info != entry.info {
                        return Err(corrupt(format!(
                            "WAL record at {offset} carries {wal_info} but manifest expects {}",
                            entry.info
                        )));
                    }
                    let parent = history
                        .head()
                        .map(|(_, db)| Arc::clone(db))
                        .ok_or_else(|| corrupt("manifest: delta version with no parent"))?;
                    let mut db = (*parent).clone();
                    db.apply_delta(&delta)?;
                    history.restore(entry.info.clone(), Arc::new(db), Some(Arc::new(delta)))?;
                }
            }
        }
        Ok(history)
    }

    /// Fold every delta-backed version into a full segment file, then
    /// truncate the WAL and republish the manifest.
    fn compact_locked(&self, inner: &mut DiskInner) -> Result<()> {
        let DiskInner {
            entries, mirror, ..
        } = &mut *inner;
        let mut folded = false;
        for entry in entries.iter_mut() {
            if matches!(entry.source, VersionSource::Delta { .. }) {
                let (_, db) = mirror.snapshot(entry.info.id)?;
                self.write_segment(entry.info.id, db)?;
                entry.source = VersionSource::Segment;
                folded = true;
            }
        }
        if !folded && inner.wal_len == 0 {
            return Ok(());
        }
        // Publish the all-segment manifest *before* touching the WAL:
        // the manifest rename is the commit point, so a crash before
        // the truncate below merely leaves dead WAL bytes that the
        // next open drops. Truncating first would leave the old
        // manifest's delta offsets pointing into an empty WAL —
        // turning a healthy store unrecoverable.
        self.write_manifest(&inner.entries)?;
        let wal_path = self.wal_path();
        self.vfs
            .truncate(&wal_path, 0)
            .and_then(|()| self.vfs.fsync(&wal_path))
            .map_err(|e| io_err("cannot truncate WAL", e))?;
        inner.wal_len = 0;
        inner.compactions += 1;
        Ok(())
    }

    /// The body of [`Storage::sync`]; the trait method wraps it to
    /// record success or failure for the health report.
    fn sync_inner(&self, history: &VersionedDatabase) -> Result<()> {
        let mut inner = self.inner.lock().expect("disk storage poisoned");
        let have = inner.entries.len();
        if history.len() < have {
            return Err(RelationError::Storage(format!(
                "history has {} versions but {have} are already persisted",
                history.len()
            )));
        }
        // Refuse to fork: every overlapping version must match the
        // persisted chain — metadata against the manifest and, where
        // the in-memory mirror covers the overlap, snapshot content
        // too (snapshots are Arc-shared, so the common case is a
        // pointer comparison). After a cold open with no
        // `load_history` the mirror is empty and the content check
        // degrades to metadata-only.
        for (i, entry) in inner.entries.iter().enumerate() {
            let (info, db) = history.snapshot(i as VersionId)?;
            if *info != entry.info {
                return Err(RelationError::Storage(format!(
                    "history diverged from the persisted chain at version {i}"
                )));
            }
            if let Ok((_, mirrored)) = inner.mirror.snapshot(i as VersionId) {
                if !Arc::ptr_eq(db, mirrored) && !db.content_eq(mirrored) {
                    return Err(RelationError::Storage(format!(
                        "history diverged from the persisted chain at version {i} \
                         (same metadata, different content)"
                    )));
                }
            }
        }
        if history.len() == have {
            inner.mirror = history.clone();
            return Ok(());
        }
        // Stage new manifest entries and the WAL cursor locally;
        // `inner` is only updated after the manifest rename commits,
        // so a failed sync leaves the in-memory state describing
        // exactly what is durable on disk.
        let wal_path = self.wal_path();
        let mut new_entries: Vec<ManifestEntry> = Vec::with_capacity(history.len() - have);
        let mut wal_len = inner.wal_len;
        let mut wal_dirty = false;
        for id in have..history.len() {
            let id = id as VersionId;
            let (info, db) = history.snapshot(id)?;
            // Version 0 and whole/structural commits persist as full
            // segments; replayable deltas go to the WAL.
            let replayable = history.delta(id).filter(|d| !d.is_structural());
            let source = match replayable {
                Some(delta) => {
                    let mut payload = Vec::new();
                    put_info(&mut payload, info);
                    put_delta(&mut payload, delta);
                    let mut record = Vec::with_capacity(12 + payload.len());
                    put_u32(&mut record, payload.len() as u32);
                    put_u64(&mut record, fnv64(&payload));
                    record.extend_from_slice(&payload);
                    // Write at `wal_len`, not at EOF: a failed partial
                    // append from an earlier sync may have left
                    // unreferenced bytes past the last committed
                    // record, and the offsets recorded in the manifest
                    // must match where these bytes actually land.
                    self.vfs
                        .append_at(&wal_path, wal_len, &record)
                        .map_err(|e| io_err("cannot append WAL record", e))?;
                    wal_dirty = true;
                    let offset = wal_len;
                    wal_len += record.len() as u64;
                    VersionSource::Delta {
                        offset,
                        payload_len: payload.len() as u32,
                    }
                }
                None => {
                    self.write_segment(id, db)?;
                    VersionSource::Segment
                }
            };
            new_entries.push(ManifestEntry {
                info: info.clone(),
                source,
            });
        }
        if wal_dirty {
            self.vfs
                .fsync(&wal_path)
                .map_err(|e| io_err("cannot sync WAL", e))?;
        }
        let mut entries = inner.entries.clone();
        entries.append(&mut new_entries);
        self.write_manifest(&entries)?;
        // The manifest rename committed: the staged state is durable.
        inner.entries = entries;
        inner.wal_len = wal_len;
        inner.mirror = history.clone();
        if inner.wal_len > self.options.wal_compact_bytes {
            self.compact_locked(&mut inner)?;
        }
        Ok(())
    }
}

fn wal_record_len(payload_len: u32) -> u64 {
    12 + u64::from(payload_len)
}

fn encode_manifest(entries: &[ManifestEntry]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MANIFEST_MAGIC);
    put_u32(&mut buf, entries.len() as u32);
    for e in entries {
        put_info(&mut buf, &e.info);
        match e.source {
            VersionSource::Segment => put_u8(&mut buf, 0),
            VersionSource::Delta {
                offset,
                payload_len,
            } => {
                put_u8(&mut buf, 1);
                put_u64(&mut buf, offset);
                put_u32(&mut buf, payload_len);
            }
        }
    }
    buf
}

#[cfg(test)]
fn read_manifest(path: &Path) -> Result<Vec<ManifestEntry>> {
    let bytes =
        std::fs::read(path).map_err(|e| io_err(format!("cannot read `{}`", path.display()), e))?;
    decode_manifest(&bytes)
}

fn decode_manifest(bytes: &[u8]) -> Result<Vec<ManifestEntry>> {
    let mut r = Reader::new(bytes, "manifest");
    if r.take(MANIFEST_MAGIC.len())? != MANIFEST_MAGIC {
        return Err(corrupt("manifest: bad magic"));
    }
    let count = r.u32()? as usize;
    // 21 = the smallest encodable entry (info with empty label + tag).
    let mut entries = Vec::with_capacity(r.capacity_hint(count, 21));
    for _ in 0..count {
        let info = r.info()?;
        let source = match r.u8()? {
            0 => VersionSource::Segment,
            1 => VersionSource::Delta {
                offset: r.u64()?,
                payload_len: r.u32()?,
            },
            tag => return Err(corrupt(format!("manifest: unknown source tag {tag}"))),
        };
        entries.push(ManifestEntry { info, source });
    }
    if !r.done() {
        return Err(corrupt("manifest: trailing bytes"));
    }
    Ok(entries)
}

impl Storage for DiskStorage {
    fn kind(&self) -> StorageKind {
        StorageKind::Disk
    }

    fn sync(&self, history: &VersionedDatabase) -> Result<()> {
        let result = self.sync_inner(history);
        self.last_sync_ok.store(result.is_ok(), Ordering::Relaxed);
        *self.last_sync_error.lock().expect("sync error poisoned") =
            result.as_ref().err().map(|e| e.to_string());
        result
    }

    fn load_history(&self) -> Result<VersionedDatabase> {
        let mut inner = self.inner.lock().expect("disk storage poisoned");
        let history = self.load_from_entries(&inner.entries)?;
        inner.mirror = history.clone();
        Ok(history)
    }

    fn stats(&self) -> StorageStats {
        let inner = self.inner.lock().expect("disk storage poisoned");
        let segments = inner
            .entries
            .iter()
            .filter(|e| matches!(e.source, VersionSource::Segment))
            .count();
        let wal_records = inner.entries.len() - segments;
        let mut disk_bytes = 0u64;
        for path in [self.dir.join(MANIFEST_FILE), self.wal_path()] {
            disk_bytes += self.vfs.len(&path).unwrap_or(0);
        }
        disk_bytes += self.vfs.dir_size(&self.dir.join(SEGMENT_DIR));
        let cache = self.cache.lock().expect("page cache poisoned");
        StorageStats {
            kind: StorageKind::Disk,
            versions: inner.entries.len(),
            segments,
            wal_records,
            wal_bytes: inner.wal_len,
            disk_bytes,
            cache_pages: cache.capacity,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            compactions: inner.compactions,
        }
    }

    fn compact(&self) -> Result<()> {
        let mut inner = self.inner.lock().expect("disk storage poisoned");
        if inner.mirror.len() < inner.entries.len() {
            inner.mirror = self.load_from_entries(&inner.entries)?;
        }
        self.compact_locked(&mut inner)
    }

    fn health(&self) -> Option<StorageHealth> {
        let manifest_path = self.dir.join(MANIFEST_FILE);
        let manifest_readable = match self.vfs.read(&manifest_path) {
            Ok(bytes) => decode_manifest(&bytes).is_ok(),
            // A store that has never synced has no manifest yet —
            // that is healthy, not degraded.
            Err(_) => !self.vfs.exists(&manifest_path),
        };
        let last_sync_ok = self.last_sync_ok.load(Ordering::Relaxed);
        let wal_bytes = self.inner.lock().expect("disk storage poisoned").wal_len;
        let mut causes = Vec::new();
        if !manifest_readable {
            causes.push("manifest unreadable".to_string());
        }
        if !last_sync_ok {
            let msg = self
                .last_sync_error
                .lock()
                .expect("sync error poisoned")
                .clone()
                .unwrap_or_else(|| "unknown error".to_string());
            causes.push(format!("last sync failed: {msg}"));
        }
        if wal_bytes > self.options.wal_compact_bytes {
            causes.push(format!(
                "wal backlog: {wal_bytes} bytes past the {}-byte compaction threshold",
                self.options.wal_compact_bytes
            ));
        }
        Some(StorageHealth {
            degraded: !causes.is_empty(),
            causes,
            manifest_readable,
            last_sync_ok,
            wal_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use std::fs::{self, OpenOptions};
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Hand-rolled unique temp dirs (std-only workspace: no tempfile).
    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("fgc-storage-{tag}-{}-{n}", std::process::id()))
    }

    fn base() -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::with_names(
                "Family",
                &[
                    ("FID", DataType::Str),
                    ("FName", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        let mut fc = RelationSchema::with_names(
            "FC",
            &[("FID", DataType::Str), ("PID", DataType::Str)],
            &["FID", "PID"],
        )
        .unwrap();
        fc.add_foreign_key(&["FID"], "Family").unwrap();
        db.create_relation(fc).unwrap();
        db.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        db.insert("Family", tuple!["12", "Orexin", "gpcr"]).unwrap();
        db.insert("FC", tuple!["11", "p1"]).unwrap();
        db.build_default_indexes().unwrap();
        db
    }

    fn history() -> VersionedDatabase {
        let mut h = VersionedDatabase::new();
        h.commit(base(), 100, "v0").unwrap();
        h.commit_with(200, "v1", |db| {
            db.insert("Family", tuple!["13", "Kinase", "enzyme"])
                .map(|_| ())
        })
        .unwrap();
        h.commit_with(300, "v2", |db| {
            db.remove("Family", &tuple!["11", "Calcitonin", "gpcr"])
                .map(|_| ())
        })
        .unwrap();
        h
    }

    fn assert_same_history(a: &VersionedDatabase, b: &VersionedDatabase) {
        assert_eq!(a.len(), b.len());
        for ((ia, da), (ib, db_)) in a.iter().zip(b.iter()) {
            assert_eq!(ia, ib);
            assert!(da.content_eq(db_), "snapshot {} differs", ia.id);
            for schema in da.schemas() {
                assert_eq!(
                    da.relation(&schema.name).unwrap().indexed_columns(),
                    db_.relation(&schema.name).unwrap().indexed_columns(),
                    "index state of `{}` differs at {}",
                    schema.name,
                    ia.id
                );
            }
        }
    }

    #[test]
    fn segment_codec_round_trips_structurally() {
        let db = base();
        let bytes = encode_segment(&db).unwrap();
        let back = decode_segment(&bytes).unwrap();
        assert!(back.content_eq(&db));
        assert_eq!(
            back.relation("FC").unwrap().indexed_columns(),
            db.relation("FC").unwrap().indexed_columns()
        );
        assert_eq!(
            back.relation("Family").unwrap().schema().foreign_keys,
            db.relation("Family").unwrap().schema().foreign_keys
        );
    }

    #[test]
    fn value_codec_preserves_exact_numerics() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Int(7),
            Value::float(2.0),
            Value::float(-0.0),
            Value::float(f64::NAN),
            Value::str("hello \u{1F52C} world"),
            Value::str(""),
        ] {
            let mut buf = Vec::new();
            put_value(&mut buf, &v);
            let back = Reader::new(&buf, "test").value().unwrap();
            assert_eq!(back, v, "{v:?}");
            // Int(7) must come back as Int, not Float, even though
            // they compare equal — citations render them differently.
            assert_eq!(std::mem::discriminant(&back), std::mem::discriminant(&v));
        }
    }

    #[test]
    fn sync_then_cold_open_reproduces_the_chain_with_deltas() {
        let dir = temp_dir("cold");
        let h = history();
        {
            let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
            storage.sync(&h).unwrap();
            // idempotent
            storage.sync(&h).unwrap();
            let stats = storage.stats();
            assert_eq!(stats.versions, 3);
            assert_eq!(stats.segments, 1, "only v0 is a full segment");
            assert_eq!(stats.wal_records, 2);
            assert!(stats.wal_bytes > 0);
            assert!(stats.disk_bytes > 0);
        }
        // process "restart": a brand new handle over the same dir
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        assert_eq!(storage.stats().versions, 3);
        let loaded = storage.load_history().unwrap();
        assert_same_history(&h, &loaded);
        // replayable deltas survive the reload
        assert!(loaded.delta(1).is_some());
        assert_eq!(loaded.delta(1).unwrap().inserted(), 1);
        assert!(loaded.delta(2).is_some());
        assert_eq!(loaded.delta(2).unwrap().removed(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn incremental_sync_appends_only_new_versions() {
        let dir = temp_dir("incr");
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        let mut h = VersionedDatabase::new();
        h.commit(base(), 100, "v0").unwrap();
        storage.sync(&h).unwrap();
        let wal_before = storage.stats().wal_bytes;
        h.commit_with(200, "v1", |db| {
            db.insert("FC", tuple!["12", "p9"]).map(|_| ())
        })
        .unwrap();
        storage.sync(&h).unwrap();
        let stats = storage.stats();
        assert_eq!(stats.versions, 2);
        assert!(stats.wal_bytes > wal_before);
        assert_same_history(&h, &storage.load_history().unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn structural_commits_persist_as_segments() {
        let dir = temp_dir("structural");
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        let mut h = VersionedDatabase::new();
        h.commit(base(), 100, "v0").unwrap();
        h.commit_with(200, "schema-change", |db| {
            db.create_relation(
                RelationSchema::with_names("Extra", &[("x", DataType::Int)], &[]).unwrap(),
            )
        })
        .unwrap();
        storage.sync(&h).unwrap();
        let stats = storage.stats();
        assert_eq!(stats.segments, 2);
        assert_eq!(stats.wal_records, 0);
        let loaded = storage.load_history().unwrap();
        assert_same_history(&h, &loaded);
        // the structural delta itself is not preserved (documented)
        assert!(loaded.delta(1).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_folds_deltas_and_truncates_the_wal() {
        let dir = temp_dir("compact");
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        let h = history();
        storage.sync(&h).unwrap();
        assert!(storage.stats().wal_bytes > 0);
        storage.compact().unwrap();
        let stats = storage.stats();
        assert_eq!(stats.segments, 3);
        assert_eq!(stats.wal_records, 0);
        assert_eq!(stats.wal_bytes, 0);
        assert_eq!(stats.compactions, 1);
        // a second compact is a no-op
        storage.compact().unwrap();
        assert_eq!(storage.stats().compactions, 1);
        // cold open still reproduces every snapshot
        let reopened = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        assert_same_history(&h, &reopened.load_history().unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_wal_threshold_triggers_auto_compaction_with_floor() {
        let dir = temp_dir("autocompact");
        let options = StorageOptions {
            wal_compact_bytes: 0, // floored to MIN_WAL_COMPACT_BYTES
            ..StorageOptions::default()
        };
        let storage = DiskStorage::open(&dir, options).unwrap();
        let mut h = VersionedDatabase::new();
        h.commit(base(), 100, "v0").unwrap();
        storage.sync(&h).unwrap();
        // push enough delta bytes past the 4 KiB floor to compact
        for i in 0..40u64 {
            h.commit_with(100 + i + 1, format!("v{}", i + 1), |db| {
                let pad = "x".repeat(120);
                db.insert("FC", tuple![format!("11"), format!("p-{i}-{pad}")])
                    .map(|_| ())
            })
            .unwrap();
        }
        storage.sync(&h).unwrap();
        let stats = storage.stats();
        assert!(stats.compactions >= 1, "{stats:?}");
        assert_eq!(stats.wal_bytes, 0);
        assert_same_history(&h, &storage.load_history().unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_capacity_zero_disables_the_buffer_cache() {
        let dir = temp_dir("nocache");
        let options = StorageOptions {
            cache_pages: 0,
            ..StorageOptions::default()
        };
        let storage = DiskStorage::open(&dir, options).unwrap();
        let h = history();
        storage.sync(&h).unwrap();
        storage.load_history().unwrap();
        storage.load_history().unwrap();
        let stats = storage.stats();
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
        assert_eq!(stats.cache_hit_rate(), 0.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_loads_hit_the_buffer_cache() {
        let dir = temp_dir("cachehit");
        let options = StorageOptions {
            page_size: 0, // floored to MIN_PAGE_SIZE
            ..StorageOptions::default()
        };
        let storage = DiskStorage::open(&dir, options).unwrap();
        let h = history();
        storage.sync(&h).unwrap();
        storage.load_history().unwrap();
        let cold = storage.stats();
        assert!(cold.cache_misses > 0);
        storage.load_history().unwrap();
        let warm = storage.stats();
        assert!(warm.cache_hits > cold.cache_hits);
        assert!(warm.cache_hit_rate() > 0.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_data_dir_is_a_structured_error() {
        let dir = temp_dir("notadir");
        fs::create_dir_all(dir.parent().unwrap()).unwrap();
        fs::write(&dir, b"i am a file").unwrap();
        let err = DiskStorage::open(&dir, StorageOptions::default()).unwrap_err();
        assert!(matches!(err, RelationError::Storage(_)), "{err}");
        // a path whose parent is a file cannot be created either
        let err = DiskStorage::open(dir.join("sub"), StorageOptions::default()).unwrap_err();
        assert!(err.to_string().contains("storage error"), "{err}");
        let _ = fs::remove_file(&dir);
    }

    #[test]
    fn diverged_history_is_refused() {
        let dir = temp_dir("diverge");
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        storage.sync(&history()).unwrap();
        let mut other = VersionedDatabase::new();
        other.commit(base(), 100, "not-v0").unwrap();
        other.commit_with(150, "fork", |_| Ok(())).unwrap();
        other.commit_with(160, "fork2", |_| Ok(())).unwrap();
        assert!(matches!(
            storage.sync(&other).unwrap_err(),
            RelationError::Storage(_)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_trailing_wal_bytes_are_dropped_not_built_upon() {
        let dir = temp_dir("stalewal");
        let mut h = VersionedDatabase::new();
        h.commit(base(), 100, "v0").unwrap();
        h.commit_with(200, "v1", |db| {
            db.insert("FC", tuple!["12", "p7"]).map(|_| ())
        })
        .unwrap();
        {
            let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
            storage.sync(&h).unwrap();
        }
        // simulate a crash between a WAL append and the manifest
        // rename: unreferenced bytes trail the last committed record
        let wal_path = dir.join(WAL_FILE);
        let committed = fs::metadata(&wal_path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&wal_path).unwrap();
        f.write_all(b"torn record from a crashed sync").unwrap();
        drop(f);
        // reopen: the trailing bytes are dropped, so the next sync's
        // manifest offsets point at the bytes it actually writes
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        assert_eq!(fs::metadata(&wal_path).unwrap().len(), committed);
        h.commit_with(300, "v2", |db| {
            db.insert("FC", tuple!["12", "p8"]).map(|_| ())
        })
        .unwrap();
        storage.sync(&h).unwrap();
        assert_same_history(&h, &storage.load_history().unwrap());
        // and so does a cold reopen
        let reopened = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        assert_same_history(&h, &reopened.load_history().unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_after_compaction_manifest_leaves_a_loadable_store() {
        let dir = temp_dir("compactcrash");
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        let h = history();
        storage.sync(&h).unwrap();
        storage.compact().unwrap();
        drop(storage);
        // simulate the crash window after the all-segment manifest
        // landed but before the WAL truncate: stale record bytes are
        // still sitting in wal.log
        fs::write(dir.join(WAL_FILE), b"stale pre-compaction records").unwrap();
        let reopened = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        assert_same_history(&h, &reopened.load_history().unwrap());
        // no manifest entry references the WAL, and open dropped it
        assert_eq!(reopened.stats().wal_bytes, 0);
        assert_eq!(fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_metadata_different_content_is_refused() {
        let dir = temp_dir("fork");
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        storage.sync(&history()).unwrap();
        // identical infos (timestamps + labels), different tuples
        let mut forged = Database::new();
        forged
            .create_relation(
                RelationSchema::with_names("Other", &[("x", DataType::Int)], &["x"]).unwrap(),
            )
            .unwrap();
        let mut fork = VersionedDatabase::new();
        fork.commit(forged, 100, "v0").unwrap();
        fork.commit_with(200, "v1", |db| db.insert("Other", tuple![1]).map(|_| ()))
            .unwrap();
        fork.commit_with(300, "v2", |db| db.insert("Other", tuple![2]).map(|_| ()))
            .unwrap();
        let err = storage.sync(&fork).unwrap_err();
        assert!(err.to_string().contains("different content"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_length_prefixes_error_instead_of_allocating() {
        // a tuple claiming u32::MAX values in a 4-byte buffer
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let err = Reader::new(&buf, "tuple").tuple().unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // a manifest claiming u32::MAX entries right before EOF
        let dir = temp_dir("hostile");
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        storage.sync(&history()).unwrap();
        drop(storage);
        let manifest = dir.join(MANIFEST_FILE);
        let mut bytes = fs::read(&manifest).unwrap();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&manifest, &bytes).unwrap();
        let err = DiskStorage::open(&dir, StorageOptions::default()).unwrap_err();
        assert!(matches!(err, RelationError::Storage(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_payload_len_is_bounded_by_the_wal_file() {
        let dir = temp_dir("walbound");
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        storage.sync(&history()).unwrap();
        drop(storage);
        // corrupt the first delta entry's payload_len to a huge value
        // without touching the WAL itself
        let manifest = dir.join(MANIFEST_FILE);
        let mut entries = read_manifest(&manifest).unwrap();
        let source = entries
            .iter_mut()
            .find_map(|e| match &mut e.source {
                VersionSource::Delta { payload_len, .. } => Some(payload_len),
                VersionSource::Segment => None,
            })
            .expect("history has a delta entry");
        *source = u32::MAX - 12;
        fs::write(&manifest, encode_manifest(&entries)).unwrap();
        let reopened = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        let err = reopened.load_history().unwrap_err();
        assert!(err.to_string().contains("extends past"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn health_reports_an_unreadable_manifest() {
        let dir = temp_dir("health");
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        let health = storage.health().unwrap();
        assert!(!health.degraded, "a fresh store is healthy: {health:?}");
        assert!(health.manifest_readable, "no manifest yet is not a fault");
        storage.sync(&history()).unwrap();
        assert!(!storage.health().unwrap().degraded);
        fs::write(dir.join(MANIFEST_FILE), b"garbage").unwrap();
        let health = storage.health().unwrap();
        assert!(health.degraded && !health.manifest_readable, "{health:?}");
        assert!(health.causes.iter().any(|c| c.contains("manifest")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_sync_flips_health_until_the_next_success() {
        use crate::storage::FaultVfs;
        use fgc_fault::{FaultAction, FaultPlane, Trigger};
        let dir = temp_dir("synchealth");
        let plane = Arc::new(FaultPlane::new());
        let vfs = Arc::new(FaultVfs::over_real(Arc::clone(&plane)));
        let storage = DiskStorage::open_with_vfs(&dir, StorageOptions::default(), vfs).unwrap();
        plane.arm("storage.fsync.wal", FaultAction::Error, Trigger::Nth(1));
        let h = history();
        let err = storage.sync(&h).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        let health = storage.health().unwrap();
        assert!(health.degraded && !health.last_sync_ok, "{health:?}");
        assert!(health.causes.iter().any(|c| c.contains("last sync failed")));
        // The fault was one-shot; a retry heals the report.
        storage.sync(&h).unwrap();
        let health = storage.health().unwrap();
        assert!(health.last_sync_ok && !health.degraded, "{health:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_torn_tail_recovers_at_every_byte_boundary() {
        let dir = temp_dir("torntail");
        let h = history();
        {
            let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
            storage.sync(&h).unwrap();
        }
        let manifest_path = dir.join(MANIFEST_FILE);
        let wal_path = dir.join(WAL_FILE);
        let full_manifest = read_manifest(&manifest_path).unwrap();
        let wal_bytes = fs::read(&wal_path).unwrap();
        let last_offset = match full_manifest.last().unwrap().source {
            VersionSource::Delta {
                offset,
                payload_len,
            } => {
                assert_eq!(offset + wal_record_len(payload_len), wal_bytes.len() as u64);
                offset as usize
            }
            VersionSource::Segment => panic!("last version should be a WAL delta"),
        };
        let prev_manifest = &full_manifest[..full_manifest.len() - 1];
        // Crash between the WAL append and the manifest rename: the
        // durable manifest predates the record, and the record itself
        // is torn at an arbitrary byte. Every cut point must reopen
        // cleanly to the previous durable version.
        for cut in last_offset..=wal_bytes.len() {
            fs::write(&manifest_path, encode_manifest(prev_manifest)).unwrap();
            fs::write(&wal_path, &wal_bytes[..cut]).unwrap();
            let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
            let loaded = storage.load_history().unwrap();
            assert_eq!(loaded.len(), h.len() - 1, "cut at byte {cut}");
            for ((ia, da), (ib, db_)) in h.iter().zip(loaded.iter()) {
                assert_eq!(ia, ib, "cut at byte {cut}");
                assert!(da.content_eq(db_), "cut {cut}: snapshot {} differs", ia.id);
            }
        }
        // The impossible-by-construction layout (manifest referencing
        // a record the WAL no longer holds in full) must be a
        // structured load error at every cut, never silent corruption.
        for cut in last_offset..wal_bytes.len() {
            fs::write(&manifest_path, encode_manifest(&full_manifest)).unwrap();
            fs::write(&wal_path, &wal_bytes[..cut]).unwrap();
            let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
            let err = storage.load_history().unwrap_err();
            assert!(matches!(err, RelationError::Storage(_)), "cut {cut}: {err}");
        }
        // Restoring the full WAL restores the full chain.
        fs::write(&manifest_path, encode_manifest(&full_manifest)).unwrap();
        fs::write(&wal_path, &wal_bytes).unwrap();
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        assert_same_history(&h, &storage.load_history().unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_corruption_is_detected_at_load() {
        let dir = temp_dir("corrupt");
        let storage = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        storage.sync(&history()).unwrap();
        drop(storage);
        // flip one byte in the last WAL record's payload
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&wal_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&wal_path, &bytes).unwrap();
        let reopened = DiskStorage::open(&dir, StorageOptions::default()).unwrap();
        let err = reopened.load_history().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
