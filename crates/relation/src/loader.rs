//! Plain-text bulk load/dump for database instances.
//!
//! Format (line-oriented, `#` comments, blank lines ignored):
//!
//! ```text
//! @create Family(FID* str, FName str, Type str)
//! @create FC(FID* str, PID* str)
//! @fk FC(FID) -> Family
//! @relation Family
//! "11" | "Calcitonin" | "gpcr"
//! "12" | "Orexin"     | "gpcr"
//! ```
//!
//! * `@create R(col[*] type, ...)` declares a relation; `*` marks a
//!   primary-key column; types are `str`, `int`, `float`, `bool`,
//!   `any`;
//! * `@fk R(col, ...) -> S` declares a foreign key to `S`'s key;
//! * `@relation R` switches the insertion target for data lines;
//! * values use [`crate::value::Value::parse`] syntax.
//!
//! Relations may also be pre-registered programmatically and the
//! file restricted to data lines.

use crate::database::Database;
use crate::error::{RelationError, Result};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::version::VersionedDatabase;
use std::fmt::Write as _;

/// Load tuples from the text format into an existing database.
/// Returns the number of tuples inserted.
pub fn load_text(db: &mut Database, text: &str) -> Result<usize> {
    let mut current: Option<String> = None;
    let mut inserted = 0;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("@create") {
            let schema = parse_create(rest.trim(), lineno)?;
            db.create_relation(schema)?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("@fk") {
            apply_fk(db, rest.trim(), lineno)?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("@relation") {
            let name = rest.trim();
            if name.is_empty() {
                return Err(RelationError::Parse {
                    line: lineno,
                    message: "@relation needs a name".into(),
                });
            }
            // Fail fast on unknown relations.
            db.relation(name)?;
            current = Some(name.to_string());
            continue;
        }
        let target = current.as_ref().ok_or_else(|| RelationError::Parse {
            line: lineno,
            message: "tuple before any @relation header".into(),
        })?;
        let mut values = Vec::new();
        for field in split_fields(line) {
            let v = Value::parse(&field).ok_or_else(|| RelationError::Parse {
                line: lineno,
                message: format!("cannot parse value `{field}`"),
            })?;
            values.push(v);
        }
        if db.insert(target, Tuple::new(values))? {
            inserted += 1;
        }
    }
    Ok(inserted)
}

/// Parse `R(col[*] type, ...)` into a schema.
fn parse_create(spec: &str, lineno: usize) -> Result<crate::schema::RelationSchema> {
    use crate::schema::RelationSchema;
    use crate::value::DataType;
    let err = |message: String| RelationError::Parse {
        line: lineno,
        message,
    };
    let open = spec
        .find('(')
        .ok_or_else(|| err("@create expects R(col type, ...)".into()))?;
    let close = spec
        .rfind(')')
        .ok_or_else(|| err("@create: missing `)`".into()))?;
    let name = spec[..open].trim();
    if name.is_empty() {
        return Err(err("@create: missing relation name".into()));
    }
    let mut specs: Vec<(String, DataType)> = Vec::new();
    let mut keys: Vec<String> = Vec::new();
    for col in spec[open + 1..close].split(',') {
        let col = col.trim();
        if col.is_empty() {
            continue;
        }
        let mut parts = col.split_whitespace();
        let mut col_name = parts
            .next()
            .ok_or_else(|| err(format!("@create: bad column `{col}`")))?
            .to_string();
        let ty = match parts.next().unwrap_or("any") {
            "str" => DataType::Str,
            "int" => DataType::Int,
            "float" => DataType::Float,
            "bool" => DataType::Bool,
            "any" => DataType::Any,
            other => return Err(err(format!("@create: unknown type `{other}`"))),
        };
        if let Some(stripped) = col_name.strip_suffix('*') {
            col_name = stripped.to_string();
            keys.push(col_name.clone());
        }
        specs.push((col_name, ty));
    }
    let spec_refs: Vec<(&str, DataType)> = specs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
    RelationSchema::with_names(name, &spec_refs, &key_refs)
}

/// Parse and apply `R(col, ...) -> S`.
fn apply_fk(db: &mut Database, spec: &str, lineno: usize) -> Result<()> {
    let err = |message: String| RelationError::Parse {
        line: lineno,
        message,
    };
    let arrow = spec
        .find("->")
        .ok_or_else(|| err("@fk expects R(cols) -> S".into()))?;
    let left = spec[..arrow].trim();
    let target = spec[arrow + 2..].trim();
    let open = left
        .find('(')
        .ok_or_else(|| err("@fk: missing `(`".into()))?;
    let close = left
        .rfind(')')
        .ok_or_else(|| err("@fk: missing `)`".into()))?;
    let rel = left[..open].trim().to_string();
    let cols: Vec<&str> = left[open + 1..close]
        .split(',')
        .map(str::trim)
        .filter(|c| !c.is_empty())
        .collect();
    if rel.is_empty() || target.is_empty() || cols.is_empty() {
        return Err(err("@fk expects R(cols) -> S".into()));
    }
    // Rebuild the schema with the new FK: schemas are Arc-shared, so
    // register a modified clone.
    let mut schema = (**db.catalog().get(&rel)?).clone();
    schema.add_foreign_key(&cols, target)?;
    db.replace_schema(schema)
}

/// Split a line on `|` separators that are *outside* quoted strings.
fn split_fields(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut buf = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        if in_str {
            buf.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
            buf.push(c);
        } else if c == '|' {
            fields.push(buf.trim().to_string());
            buf.clear();
        } else {
            buf.push(c);
        }
    }
    fields.push(buf.trim().to_string());
    fields
}

/// Load a commit history from the commits text format into a
/// [`VersionedDatabase`] (appending after its current head). Returns
/// the number of commits applied.
///
/// Format, one commit per `@commit` section:
///
/// ```text
/// # deltas over the base snapshot
/// @commit 200 GtoPdb 24
/// + Family | "20" | "Melatonin" | "gpcr"
/// - FC | "11" | "p1"
/// ```
///
/// `@commit TIMESTAMP LABEL...` opens a commit; `+ R | v...` inserts
/// a tuple into `R`, `- R | v...` removes one. Commits go through
/// [`VersionedDatabase::commit_with`], so each version records its
/// delta and derived engines can replay it.
///
/// Application is **all-or-nothing**: commits are staged on a copy of
/// the history (snapshots are `Arc`-shared, so the copy is cheap) and
/// the history is only replaced once every section applied — on error
/// it is left exactly as passed in, so a caller can fix the file and
/// retry without double-applying earlier commits.
pub fn load_commits(history: &mut VersionedDatabase, text: &str) -> Result<usize> {
    let commits = parse_commits(text)?;
    apply_commits(history, commits)
}

/// Catch a history up to a commits file it may already partially (or
/// fully) contain: version `i + 1` of the chain is expected to be the
/// file's section `i`. Sections already in the chain are verified —
/// timestamp and label must match the recorded [`VersionInfo`], a
/// mismatch is a structured error, never a silent skip — and only the
/// sections past the head are applied (all-or-nothing, like
/// [`load_commits`]). Returns the number of commits newly applied;
/// `0` when the chain already contains the whole file.
///
/// This is the `serve --commits` restart path: a persisted history
/// (even just the base version a non-versioned run wrote) plus the
/// same commits file resumes exactly where the chain left off,
/// without re-running the text loader.
pub fn resume_commits(history: &mut VersionedDatabase, text: &str) -> Result<usize> {
    if history.is_empty() {
        return Err(RelationError::Storage(
            "cannot resume commits on an empty history (no base version to anchor them)".into(),
        ));
    }
    let commits = parse_commits(text)?;
    let have = history.len() - 1; // sections already in the chain
    for (i, (timestamp, label, _)) in commits.iter().take(have).enumerate() {
        let (info, _) = history.snapshot((i + 1) as crate::version::VersionId)?;
        if info.timestamp != *timestamp || info.label != *label {
            return Err(RelationError::Storage(format!(
                "commit section {} (`{label}` @ {timestamp}) conflicts with already-applied \
                 version {} (`{}` @ {}): the commits file and the history have diverged",
                i + 1,
                info.id,
                info.label,
                info.timestamp,
            )));
        }
    }
    apply_commits(history, commits.into_iter().skip(have).collect())
}

// (timestamp, label, ops); op = (lineno, insert?, relation, tuple)
type CommitOp = (usize, bool, String, Tuple);
type CommitSection = (u64, String, Vec<CommitOp>);

/// Parse the commits text format into its sections without touching
/// any history.
fn parse_commits(text: &str) -> Result<Vec<CommitSection>> {
    let mut commits: Vec<CommitSection> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        let err = |message: String| RelationError::Parse {
            line: lineno,
            message,
        };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("@commit") {
            let rest = rest.trim();
            let (ts, label) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
            let timestamp: u64 = ts
                .parse()
                .map_err(|_| err(format!("@commit expects a numeric timestamp, got `{ts}`")))?;
            let label = if label.trim().is_empty() {
                format!("commit@{timestamp}")
            } else {
                label.trim().to_string()
            };
            commits.push((timestamp, label, Vec::new()));
            continue;
        }
        let (insert, rest) = match (line.strip_prefix('+'), line.strip_prefix('-')) {
            (Some(rest), _) => (true, rest),
            (_, Some(rest)) => (false, rest),
            _ => return Err(err("expected `@commit`, `+ R | ...`, or `- R | ...`".into())),
        };
        let mut fields = split_fields(rest);
        if fields.len() < 2 {
            return Err(err("op needs a relation and at least one value".into()));
        }
        let relation = fields.remove(0);
        if relation.is_empty() {
            return Err(err("op is missing its relation name".into()));
        }
        let mut values = Vec::with_capacity(fields.len());
        for field in fields {
            values.push(
                Value::parse(&field).ok_or_else(|| err(format!("cannot parse value `{field}`")))?,
            );
        }
        commits
            .last_mut()
            .ok_or_else(|| err("op before any @commit header".into()))?
            .2
            .push((lineno, insert, relation, Tuple::new(values)));
    }
    Ok(commits)
}

/// Stage `commits` on a copy of the history and swap on success —
/// the all-or-nothing contract both loaders document.
fn apply_commits(history: &mut VersionedDatabase, commits: Vec<CommitSection>) -> Result<usize> {
    let applied = commits.len();
    let mut staged = history.clone();
    for (timestamp, label, ops) in commits {
        staged.commit_with(timestamp, label, |db| {
            for (lineno, insert, relation, tuple) in ops {
                let effective = if insert {
                    db.insert(&relation, tuple)?
                } else {
                    db.remove(&relation, &tuple)?
                };
                if !effective {
                    return Err(RelationError::Parse {
                        line: lineno,
                        message: format!(
                            "{} on `{relation}` had no effect (tuple {})",
                            if insert { "insert" } else { "remove" },
                            if insert { "already stored" } else { "absent" },
                        ),
                    });
                }
            }
            Ok(())
        })?;
    }
    *history = staged;
    Ok(applied)
}

/// Dump a database to the text format (relations in catalog order,
/// tuples in insertion order). `load_text` of the output reproduces
/// the instance.
pub fn dump_text(db: &Database) -> String {
    let mut out = String::new();
    for schema in db.catalog().iter() {
        let rel = db.relation(&schema.name).expect("catalog relation exists");
        let _ = writeln!(out, "@relation {}", schema.name);
        for row in rel.iter() {
            let rendered: Vec<String> = row.iter().map(|v| v.render().into_owned()).collect();
            let _ = writeln!(out, "{}", rendered.join(" | "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::with_names(
                "Family",
                &[
                    ("FID", DataType::Str),
                    ("FName", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::with_names(
                "MetaData",
                &[("Type", DataType::Str), ("Value", DataType::Str)],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn load_basic() {
        let mut db = db();
        let n = load_text(
            &mut db,
            r#"
            # GtoPdb sample
            @relation Family
            "11" | "Calcitonin" | "gpcr"
            "12" | "Orexin" | "gpcr"
            @relation MetaData
            "Owner" | "Tony Harmar"
            "#,
        )
        .unwrap();
        assert_eq!(n, 3);
        assert_eq!(db.relation("Family").unwrap().len(), 2);
    }

    #[test]
    fn load_commits_builds_versions_with_deltas() {
        let mut db = db();
        load_text(
            &mut db,
            "@relation Family\n\"11\" | \"Calcitonin\" | \"gpcr\"",
        )
        .unwrap();
        let mut history = VersionedDatabase::new();
        history.commit(db, 100, "base").unwrap();
        let n = load_commits(
            &mut history,
            r#"
            # two curation releases
            @commit 200 GtoPdb 24
            + Family | "12" | "Orexin" | "gpcr"
            + MetaData | "Curator" | "Hay"
            @commit 300
            - Family | "11" | "Calcitonin" | "gpcr"
            "#,
        )
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(history.len(), 3);
        assert_eq!(history.snapshot(1).unwrap().0.label, "GtoPdb 24");
        assert_eq!(history.snapshot(2).unwrap().0.label, "commit@300");
        assert_eq!(history.snapshot(2).unwrap().1.total_tuples(), 2);
        let d1 = history.delta(1).unwrap();
        assert_eq!((d1.inserted(), d1.removed()), (2, 0));
        assert_eq!((history.delta(2).unwrap().removed()), 1);
    }

    #[test]
    fn resume_commits_applies_only_the_missing_tail() {
        const COMMITS: &str = "@commit 200 r1\n+ Family | \"12\" | \"Orexin\" | \"gpcr\"\n\
                               @commit 300 r2\n+ Family | \"13\" | \"Melatonin\" | \"gpcr\"";
        let mut db = db();
        load_text(
            &mut db,
            "@relation Family\n\"11\" | \"Calcitonin\" | \"gpcr\"",
        )
        .unwrap();
        // a chain that already contains the file's first section
        let mut partial = VersionedDatabase::new();
        partial.commit(db.clone(), 100, "base").unwrap();
        assert_eq!(
            load_commits(
                &mut partial,
                "@commit 200 r1\n+ Family | \"12\" | \"Orexin\" | \"gpcr\""
            )
            .unwrap(),
            1
        );
        assert_eq!(resume_commits(&mut partial, COMMITS).unwrap(), 1);
        assert_eq!(partial.len(), 3);
        // it now matches the chain built from scratch
        let mut full = VersionedDatabase::new();
        full.commit(db, 100, "base").unwrap();
        load_commits(&mut full, COMMITS).unwrap();
        assert!(partial.head().unwrap().1.content_eq(full.head().unwrap().1));
        // resuming again is a no-op
        assert_eq!(resume_commits(&mut partial, COMMITS).unwrap(), 0);
        assert_eq!(partial.len(), 3);
        // a chain with *extra* versions past the file is fine too
        partial.commit_with(400, "live", |_| Ok(())).unwrap();
        assert_eq!(resume_commits(&mut partial, COMMITS).unwrap(), 0);
    }

    #[test]
    fn resume_commits_refuses_a_divergent_file_and_empty_history() {
        let mut history = VersionedDatabase::new();
        history.commit(db(), 100, "base").unwrap();
        load_commits(&mut history, "@commit 200 r1\n+ MetaData | \"a\" | \"b\"").unwrap();
        // same position, different label: conflict, not silent skip
        let err = resume_commits(
            &mut history,
            "@commit 200 other\n+ MetaData | \"a\" | \"b\"",
        )
        .unwrap_err();
        assert!(err.to_string().contains("diverged"), "{err}");
        assert_eq!(history.len(), 2, "history untouched on conflict");
        // an empty history has no base to anchor the sections
        let mut empty = VersionedDatabase::new();
        assert!(resume_commits(&mut empty, "@commit 200 r1\n+ MetaData | \"a\" | \"b\"").is_err());
    }

    #[test]
    fn load_commits_rejects_malformed_input() {
        let mut history = VersionedDatabase::new();
        history.commit(db(), 100, "base").unwrap();
        // op before any @commit
        assert!(matches!(
            load_commits(&mut history, "+ Family | \"x\" | \"y\" | \"z\""),
            Err(RelationError::Parse { line: 1, .. })
        ));
        // bad timestamp
        assert!(load_commits(&mut history, "@commit soon v1").is_err());
        // neither +/- nor @commit
        assert!(load_commits(&mut history, "@commit 200 v1\nFamily | \"x\"").is_err());
        // ineffective op aborts the commit (and the history is unchanged)
        let before = history.len();
        let err = load_commits(
            &mut history,
            "@commit 200 v1\n- Family | \"99\" | \"no\" | \"pe\"",
        )
        .unwrap_err();
        assert!(err.to_string().contains("no effect"), "{err}");
        assert_eq!(history.len(), before);
        // all-or-nothing: a failure in a *later* section rolls back
        // the earlier (valid) commits too, so a fixed file can be
        // retried without double-applying
        let err = load_commits(
            &mut history,
            "@commit 200 ok\n+ Family | \"55\" | \"Fifty\" | \"gpcr\"\n\
             @commit 300 bad\n- Family | \"99\" | \"no\" | \"pe\"",
        )
        .unwrap_err();
        assert!(err.to_string().contains("no effect"), "{err}");
        assert_eq!(history.len(), before);
        assert!(!history
            .head()
            .unwrap()
            .1
            .relation("Family")
            .unwrap()
            .contains(&tuple!["55", "Fifty", "gpcr"]));
        // and the retry of the fixed file succeeds cleanly
        assert_eq!(
            load_commits(
                &mut history,
                "@commit 200 ok\n+ Family | \"55\" | \"Fifty\" | \"gpcr\""
            )
            .unwrap(),
            1
        );
        assert_eq!(history.len(), before + 1);
    }

    #[test]
    fn pipe_inside_string_is_data() {
        let mut db = db();
        load_text(&mut db, "@relation MetaData\n\"URL\" | \"a|b\"").unwrap();
        let rel = db.relation("MetaData").unwrap();
        assert_eq!(rel.rows()[0][1], Value::str("a|b"));
    }

    #[test]
    fn tuple_before_header_is_error() {
        let mut db = db();
        let err = load_text(&mut db, "\"x\" | \"y\"").unwrap_err();
        assert!(matches!(err, RelationError::Parse { line: 1, .. }));
    }

    #[test]
    fn unknown_relation_is_error() {
        let mut db = db();
        assert!(load_text(&mut db, "@relation Nope").is_err());
    }

    #[test]
    fn create_and_fk_directives() {
        let mut db = Database::new();
        let n = load_text(
            &mut db,
            r#"
            @create Family(FID* str, FName str, Type str)
            @create FC(FID* str, PID* str)
            @fk FC(FID) -> Family
            @relation Family
            "11" | "Calcitonin" | "gpcr"
            @relation FC
            "11" | "p1"
            "#,
        )
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.catalog().get("Family").unwrap().key, vec![0]);
        assert_eq!(db.catalog().get("FC").unwrap().foreign_keys.len(), 1);
        db.check_integrity().unwrap();
    }

    #[test]
    fn fk_violation_detected_after_directive_load() {
        let mut db = Database::new();
        load_text(
            &mut db,
            r#"@create Family(FID* str)
@create FC(FID* str)
@fk FC(FID) -> Family
@relation FC
"99""#,
        )
        .unwrap();
        assert!(db.check_integrity().is_err());
    }

    #[test]
    fn create_rejects_bad_type() {
        let mut db = Database::new();
        let err = load_text(&mut db, "@create R(a wibble)").unwrap_err();
        assert!(matches!(err, RelationError::Parse { .. }));
    }

    #[test]
    fn create_defaults_untyped_columns_to_any() {
        let mut db = Database::new();
        load_text(&mut db, "@create R(a, b int)").unwrap();
        let schema = db.catalog().get("R").unwrap();
        assert_eq!(schema.attributes[0].ty, crate::value::DataType::Any);
        assert_eq!(schema.attributes[1].ty, crate::value::DataType::Int);
    }

    #[test]
    fn fk_requires_arrow_syntax() {
        let mut db = Database::new();
        load_text(&mut db, "@create R(a str)").unwrap();
        assert!(load_text(&mut db, "@fk R(a) Family").is_err());
    }

    #[test]
    fn dump_then_load_round_trips() {
        let mut original = db();
        original
            .insert("Family", tuple!["11", "Calci | tonin", "gpcr"])
            .unwrap();
        original
            .insert("MetaData", tuple!["Version", "23"])
            .unwrap();
        let text = dump_text(&original);
        let mut restored = db();
        let n = load_text(&mut restored, &text).unwrap();
        assert_eq!(n, 2);
        assert_eq!(
            restored.relation("Family").unwrap().rows(),
            original.relation("Family").unwrap().rows()
        );
        assert_eq!(
            restored.relation("MetaData").unwrap().rows(),
            original.relation("MetaData").unwrap().rows()
        );
    }
}
