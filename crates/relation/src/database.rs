//! A database instance: a catalog plus one [`Relation`] per schema.

use crate::delta::{DatabaseDelta, DeltaOp, RelationDelta};
use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::{Catalog, RelationSchema};
use crate::tuple::Tuple;
use std::collections::HashMap;
use std::sync::Arc;

/// An in-memory relational database.
///
/// Relations are held behind [`Arc`] so cloning a database is O(1)
/// per relation: the clone structurally *shares* every relation with
/// the original, and a relation is deep-copied only on first mutable
/// access ([`Database::relation_mut`] goes through [`Arc::make_mut`]).
/// This is what makes versioned serving O(changed): a derived version
/// pays only for the relations its delta touches.
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
    relations: HashMap<String, Arc<Relation>>,
    /// Whether a commit delta is being captured (see
    /// [`Database::begin_delta`]).
    recording: bool,
    /// A structural change (relation created, schema replaced)
    /// happened while recording.
    structural_change: bool,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register a schema and create its (empty) relation instance.
    pub fn create_relation(&mut self, schema: RelationSchema) -> Result<()> {
        let arc = self.catalog.add(schema)?;
        let mut relation = Relation::new(arc);
        if self.recording {
            self.structural_change = true;
            relation.start_recording();
        }
        self.relations
            .insert(relation.name().to_string(), Arc::new(relation));
        Ok(())
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Replace a relation's schema with a constraint-modified clone
    /// (same name/attributes/key). Used by the loader's `@fk` lines.
    pub fn replace_schema(&mut self, schema: RelationSchema) -> Result<()> {
        let name = schema.name.clone();
        let arc = self.catalog.replace(schema)?;
        let rel = self
            .relations
            .get_mut(&name)
            .ok_or(RelationError::UnknownRelation(name))?;
        Arc::make_mut(rel).set_schema(arc);
        if self.recording {
            self.structural_change = true;
        }
        Ok(())
    }

    /// A relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .map(|arc| arc.as_ref())
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))
    }

    /// The shared handle for a relation, for structural sharing
    /// across derived databases (see [`Database::adopt_relation_arc`]).
    pub fn relation_arc(&self, name: &str) -> Result<&Arc<Relation>> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))
    }

    /// A mutable relation by name. Copy-on-write: if the relation is
    /// shared with another database (a parent or derived version), it
    /// is deep-copied here first, so mutations never leak into a
    /// sharer. While a delta is being captured the first mutable
    /// access also attaches the effective-op log (recording is lazy —
    /// untouched relations stay shared and logless).
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        let arc = self
            .relations
            .get_mut(name)
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))?;
        let rel = Arc::make_mut(arc);
        if self.recording {
            rel.start_recording();
        }
        Ok(rel)
    }

    /// Insert one tuple (key/type/arity checked; FKs are checked by
    /// [`Database::check_integrity`], which is deliberately separate so
    /// bulk loads can insert in any order).
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        self.relation_mut(relation)?.insert(tuple)
    }

    /// Insert many tuples into one relation.
    pub fn insert_all<I>(&mut self, relation: &str, tuples: I) -> Result<usize>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let rel = self.relation_mut(relation)?;
        let mut added = 0;
        for t in tuples {
            if rel.insert(t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Remove one tuple. Returns `true` if it was stored. Like
    /// [`Database::insert`], foreign keys are not enforced here;
    /// [`Database::check_integrity`] validates the whole instance.
    pub fn remove(&mut self, relation: &str, tuple: &Tuple) -> Result<bool> {
        self.relation_mut(relation)?.remove(tuple)
    }

    /// Start capturing a commit delta: every subsequent effective
    /// insert or removal (including through
    /// [`Database::relation_mut`]) is logged until
    /// [`Database::take_delta`]. Structural changes — creating a
    /// relation, replacing a schema, building an index — mark the
    /// delta structural, which tells consumers to rebuild instead of
    /// replay.
    ///
    /// Recording is lazy: no relation is touched here. The op log is
    /// attached on a relation's first mutable access, which is also
    /// when copy-on-write unshares it — so a commit that touches k of
    /// n relations costs O(k), not O(n).
    pub fn begin_delta(&mut self) {
        self.recording = true;
        self.structural_change = false;
    }

    /// Stop capturing and return the recorded delta. Per-relation
    /// logs come back in catalog (registration) order; ops on
    /// different relations commute, so that order is canonical.
    pub fn take_delta(&mut self) -> DatabaseDelta {
        self.recording = false;
        let mut structural = self.structural_change;
        self.structural_change = false;
        let mut relations = Vec::new();
        let names: Vec<String> = self.catalog.iter().map(|s| s.name.clone()).collect();
        for name in names {
            let Some(arc) = self.relations.get_mut(&name) else {
                continue;
            };
            // Only relations that saw a mutable access carry a log,
            // and that access already unshared them — `make_mut` on
            // the rest would deep-copy shared data for nothing.
            if !arc.has_log() {
                continue;
            }
            let Some(log) = Arc::make_mut(arc).take_log() else {
                continue;
            };
            structural |= log.structural;
            if !log.ops.is_empty() {
                relations.push(RelationDelta {
                    relation: name,
                    ops: log.ops,
                });
            }
        }
        DatabaseDelta::new(relations, structural)
    }

    /// Replay a recorded delta onto this database.
    ///
    /// Sound only when `self` is structurally identical to the
    /// database the delta was recorded against (its parent version):
    /// then every logged op is effective again and the result is
    /// structurally identical — same row order, same index state — to
    /// the database the recording produced. A structural delta, or an
    /// op that is not effective (evidence the base diverged), aborts
    /// with [`RelationError::DeltaMismatch`]; the database may then
    /// be partially updated and should be discarded.
    pub fn apply_delta(&mut self, delta: &DatabaseDelta) -> Result<()> {
        if delta.is_structural() {
            return Err(RelationError::DeltaMismatch(
                "structural delta cannot be replayed".into(),
            ));
        }
        for rd in delta.relations() {
            let relation = self.relation_mut(&rd.relation)?;
            for op in &rd.ops {
                let effective = match op {
                    DeltaOp::Insert(t) => relation.insert(t.clone())?,
                    DeltaOp::Remove(t) => relation.remove(t)?,
                };
                if !effective {
                    return Err(RelationError::DeltaMismatch(format!(
                        "op had no effect on `{}`: base is not the delta's parent",
                        rd.relation
                    )));
                }
            }
        }
        Ok(())
    }

    /// Adopt a fully built relation (rows and indexes included) under
    /// its existing schema. Used when deriving one database from
    /// another to carry over relations known to be unchanged.
    pub fn adopt_relation(&mut self, relation: Relation) -> Result<()> {
        self.adopt_relation_arc(Arc::new(relation))
    }

    /// Adopt a relation by shared handle: the adopting database
    /// structurally shares the rows and indexes with every other
    /// holder of the `Arc` (copy-on-write protects sharers if either
    /// side later mutates). This is the O(1) carry-over path for
    /// derived versions.
    pub fn adopt_relation_arc(&mut self, relation: Arc<Relation>) -> Result<()> {
        self.catalog.add((**relation.schema()).clone())?;
        let mut relation = relation;
        if self.recording {
            // like create_relation: op replay cannot reproduce a
            // wholesale adoption, so the delta must force a rebuild
            self.structural_change = true;
            Arc::make_mut(&mut relation).start_recording();
        }
        self.relations.insert(relation.name().to_string(), relation);
        Ok(())
    }

    /// Shared relation handles in catalog (registration) order. Used
    /// by memory accounting to deduplicate structurally shared
    /// relations across versions by pointer identity.
    pub fn relation_arcs(&self) -> impl Iterator<Item = &Arc<Relation>> {
        self.catalog
            .iter()
            .filter_map(move |s| self.relations.get(&s.name))
    }

    /// Rough resident size of the stored data in bytes (rows plus
    /// index structures). Shared relations are counted in full here;
    /// callers that hold several versions deduplicate via
    /// [`Database::relation_arcs`] pointer identity.
    pub fn approx_bytes(&self) -> usize {
        self.relations.values().map(|r| r.approx_bytes()).sum()
    }

    /// Structural equality of the stored data: same catalog (names,
    /// registration order) and, per relation, the same rows in the
    /// same order. Used by debug assertions that independent
    /// derivations of one version agree.
    pub fn content_eq(&self, other: &Database) -> bool {
        let mine: Vec<&str> = self.catalog.iter().map(|s| s.name.as_str()).collect();
        let theirs: Vec<&str> = other.catalog.iter().map(|s| s.name.as_str()).collect();
        mine == theirs
            && mine
                .iter()
                .all(|name| match (self.relation(name), other.relation(name)) {
                    (Ok(a), Ok(b)) => a.rows() == b.rows(),
                    _ => false,
                })
    }

    /// Total number of stored tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Validate every foreign key in the instance: for each
    /// referencing tuple, the referenced key must exist.
    pub fn check_integrity(&self) -> Result<()> {
        self.catalog.validate()?;
        for schema in self.catalog.iter() {
            let rel = self.relation(&schema.name)?;
            for fk in &schema.foreign_keys {
                let target = self.relation(&fk.references)?;
                for row in rel.iter() {
                    let key = row.project(&fk.columns);
                    if key.iter().any(|v| v.is_null()) {
                        continue; // SQL semantics: null FKs are not checked
                    }
                    if target.get_by_key(&key).is_none() {
                        return Err(RelationError::ForeignKeyViolation {
                            relation: schema.name.clone(),
                            references: fk.references.clone(),
                            key: key.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Build secondary indexes on every foreign-key column and every
    /// key prefix column; useful before running query workloads.
    pub fn build_default_indexes(&mut self) -> Result<()> {
        let plans: Vec<(String, Vec<usize>)> = self
            .catalog
            .iter()
            .map(|s| {
                let mut cols: Vec<usize> = s
                    .foreign_keys
                    .iter()
                    .flat_map(|fk| fk.columns.clone())
                    .collect();
                cols.extend(s.key.first().copied());
                cols.sort_unstable();
                cols.dedup();
                (s.name.clone(), cols)
            })
            .collect();
        for (name, cols) in plans {
            let rel = self.relation_mut(&name)?;
            for c in cols {
                rel.build_index(c)?;
            }
        }
        Ok(())
    }

    /// Schemas of all relations (registration order).
    pub fn schemas(&self) -> impl Iterator<Item = &Arc<RelationSchema>> {
        self.catalog.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::DataType;

    fn gtopdb_skeleton() -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::with_names(
                "Family",
                &[
                    ("FID", DataType::Str),
                    ("FName", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        let mut fc = RelationSchema::with_names(
            "FC",
            &[("FID", DataType::Str), ("PID", DataType::Str)],
            &["FID", "PID"],
        )
        .unwrap();
        fc.add_foreign_key(&["FID"], "Family").unwrap();
        db.create_relation(fc).unwrap();
        db
    }

    #[test]
    fn create_insert_query() {
        let mut db = gtopdb_skeleton();
        db.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        assert_eq!(db.relation("Family").unwrap().len(), 1);
        assert_eq!(db.total_tuples(), 1);
    }

    #[test]
    fn unknown_relation_errors() {
        let mut db = gtopdb_skeleton();
        assert!(db.insert("Nope", tuple!["x"]).is_err());
        assert!(db.relation("Nope").is_err());
    }

    #[test]
    fn integrity_accepts_satisfied_fk() {
        let mut db = gtopdb_skeleton();
        db.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        db.insert("FC", tuple!["11", "p1"]).unwrap();
        db.check_integrity().unwrap();
    }

    #[test]
    fn integrity_rejects_dangling_fk() {
        let mut db = gtopdb_skeleton();
        db.insert("FC", tuple!["99", "p1"]).unwrap();
        let err = db.check_integrity().unwrap_err();
        assert!(matches!(err, RelationError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn integrity_skips_null_fk() {
        let mut db = gtopdb_skeleton();
        db.insert("FC", tuple![crate::value::Value::Null, "p1"])
            .unwrap();
        db.check_integrity().unwrap();
    }

    #[test]
    fn default_indexes_cover_fk_columns() {
        let mut db = gtopdb_skeleton();
        db.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        db.insert("FC", tuple!["11", "p1"]).unwrap();
        db.build_default_indexes().unwrap();
        let fc = db.relation("FC").unwrap();
        assert!(fc.probe(0, &crate::value::Value::str("11")).is_some());
    }

    #[test]
    fn delta_round_trip_reproduces_the_mutated_database() {
        let mut parent = gtopdb_skeleton();
        parent
            .insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        parent.insert("FC", tuple!["11", "p1"]).unwrap();
        parent.build_default_indexes().unwrap();

        let mut child = parent.clone();
        child.begin_delta();
        child
            .insert("Family", tuple!["12", "Orexin", "gpcr"])
            .unwrap();
        child.remove("FC", &tuple!["11", "p1"]).unwrap();
        child.insert("FC", tuple!["12", "p2"]).unwrap();
        let delta = child.take_delta();
        assert!(!delta.is_structural());
        assert_eq!(delta.op_count(), 3);

        let mut replayed = parent.clone();
        replayed.apply_delta(&delta).unwrap();
        assert!(replayed.content_eq(&child));
        // indexes replayed identically too
        assert_eq!(
            replayed.relation("FC").unwrap().indexed_columns(),
            child.relation("FC").unwrap().indexed_columns()
        );
    }

    #[test]
    fn relation_mut_mutations_are_recorded() {
        let mut db = gtopdb_skeleton();
        db.begin_delta();
        db.relation_mut("Family")
            .unwrap()
            .insert(tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        let delta = db.take_delta();
        assert_eq!(delta.op_count(), 1);
        assert_eq!(delta.touched().collect::<Vec<_>>(), vec!["Family"]);
    }

    #[test]
    fn structural_commits_are_flagged_and_not_replayable() {
        let mut db = gtopdb_skeleton();
        db.begin_delta();
        db.create_relation(
            RelationSchema::with_names("New", &[("x", DataType::Int)], &[]).unwrap(),
        )
        .unwrap();
        let delta = db.take_delta();
        assert!(delta.is_structural());
        let mut other = gtopdb_skeleton();
        assert!(matches!(
            other.apply_delta(&delta).unwrap_err(),
            RelationError::DeltaMismatch(_)
        ));
    }

    #[test]
    fn apply_delta_rejects_diverged_base() {
        let mut parent = gtopdb_skeleton();
        parent.begin_delta();
        parent
            .insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        let delta = parent.take_delta();
        // replaying onto a base that already holds the tuple: the
        // insert is ineffective, which is evidence of divergence
        assert!(matches!(
            parent.apply_delta(&delta).unwrap_err(),
            RelationError::DeltaMismatch(_)
        ));
    }

    #[test]
    fn content_eq_detects_row_and_catalog_differences() {
        let mut a = gtopdb_skeleton();
        let mut b = gtopdb_skeleton();
        assert!(a.content_eq(&b));
        a.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        assert!(!a.content_eq(&b));
        b.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        assert!(a.content_eq(&b));
        b.create_relation(RelationSchema::with_names("Z", &[("x", DataType::Int)], &[]).unwrap())
            .unwrap();
        assert!(!a.content_eq(&b));
    }

    #[test]
    fn adopt_relation_while_recording_is_structural() {
        let mut src = gtopdb_skeleton();
        src.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        let mut db = Database::new();
        db.begin_delta();
        db.adopt_relation(src.relation("Family").unwrap().clone())
            .unwrap();
        // adoption cannot be replayed op-by-op: the delta must force
        // consumers down the rebuild path, and later inserts into the
        // adopted relation are still logged
        db.insert("Family", tuple!["12", "Orexin", "gpcr"]).unwrap();
        let delta = db.take_delta();
        assert!(delta.is_structural());
        assert_eq!(delta.op_count(), 1);
    }

    #[test]
    fn adopt_relation_carries_rows_and_indexes() {
        let mut src = gtopdb_skeleton();
        src.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        src.relation_mut("Family").unwrap().build_index(2).unwrap();
        let mut dst = Database::new();
        dst.adopt_relation(src.relation("Family").unwrap().clone())
            .unwrap();
        assert_eq!(dst.relation("Family").unwrap().len(), 1);
        assert_eq!(dst.relation("Family").unwrap().indexed_columns(), vec![2]);
        // adopting a second relation with the same name collides
        assert!(dst
            .adopt_relation(src.relation("Family").unwrap().clone())
            .is_err());
    }

    #[test]
    fn insert_all_counts_new_tuples() {
        let mut db = gtopdb_skeleton();
        let n = db
            .insert_all(
                "Family",
                vec![
                    tuple!["11", "Calcitonin", "gpcr"],
                    tuple!["11", "Calcitonin", "gpcr"],
                    tuple!["12", "Orexin", "gpcr"],
                ],
            )
            .unwrap();
        assert_eq!(n, 2);
    }
}
