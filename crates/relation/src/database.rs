//! A database instance: a catalog plus one [`Relation`] per schema.

use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::{Catalog, RelationSchema};
use crate::tuple::Tuple;
use std::collections::HashMap;
use std::sync::Arc;

/// An in-memory relational database.
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
    relations: HashMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register a schema and create its (empty) relation instance.
    pub fn create_relation(&mut self, schema: RelationSchema) -> Result<()> {
        let arc = self.catalog.add(schema)?;
        self.relations.insert(arc.name.clone(), Relation::new(arc));
        Ok(())
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Replace a relation's schema with a constraint-modified clone
    /// (same name/attributes/key). Used by the loader's `@fk` lines.
    pub fn replace_schema(&mut self, schema: RelationSchema) -> Result<()> {
        let name = schema.name.clone();
        let arc = self.catalog.replace(schema)?;
        self.relations
            .get_mut(&name)
            .ok_or(RelationError::UnknownRelation(name))?
            .set_schema(arc);
        Ok(())
    }

    /// A relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))
    }

    /// A mutable relation by name.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))
    }

    /// Insert one tuple (key/type/arity checked; FKs are checked by
    /// [`Database::check_integrity`], which is deliberately separate so
    /// bulk loads can insert in any order).
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        self.relation_mut(relation)?.insert(tuple)
    }

    /// Insert many tuples into one relation.
    pub fn insert_all<I>(&mut self, relation: &str, tuples: I) -> Result<usize>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let rel = self.relation_mut(relation)?;
        let mut added = 0;
        for t in tuples {
            if rel.insert(t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Total number of stored tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Validate every foreign key in the instance: for each
    /// referencing tuple, the referenced key must exist.
    pub fn check_integrity(&self) -> Result<()> {
        self.catalog.validate()?;
        for schema in self.catalog.iter() {
            let rel = self.relation(&schema.name)?;
            for fk in &schema.foreign_keys {
                let target = self.relation(&fk.references)?;
                for row in rel.iter() {
                    let key = row.project(&fk.columns);
                    if key.iter().any(|v| v.is_null()) {
                        continue; // SQL semantics: null FKs are not checked
                    }
                    if target.get_by_key(&key).is_none() {
                        return Err(RelationError::ForeignKeyViolation {
                            relation: schema.name.clone(),
                            references: fk.references.clone(),
                            key: key.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Build secondary indexes on every foreign-key column and every
    /// key prefix column; useful before running query workloads.
    pub fn build_default_indexes(&mut self) -> Result<()> {
        let plans: Vec<(String, Vec<usize>)> = self
            .catalog
            .iter()
            .map(|s| {
                let mut cols: Vec<usize> = s
                    .foreign_keys
                    .iter()
                    .flat_map(|fk| fk.columns.clone())
                    .collect();
                cols.extend(s.key.first().copied());
                cols.sort_unstable();
                cols.dedup();
                (s.name.clone(), cols)
            })
            .collect();
        for (name, cols) in plans {
            let rel = self.relation_mut(&name)?;
            for c in cols {
                rel.build_index(c)?;
            }
        }
        Ok(())
    }

    /// Schemas of all relations (registration order).
    pub fn schemas(&self) -> impl Iterator<Item = &Arc<RelationSchema>> {
        self.catalog.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::DataType;

    fn gtopdb_skeleton() -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::with_names(
                "Family",
                &[
                    ("FID", DataType::Str),
                    ("FName", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        let mut fc = RelationSchema::with_names(
            "FC",
            &[("FID", DataType::Str), ("PID", DataType::Str)],
            &["FID", "PID"],
        )
        .unwrap();
        fc.add_foreign_key(&["FID"], "Family").unwrap();
        db.create_relation(fc).unwrap();
        db
    }

    #[test]
    fn create_insert_query() {
        let mut db = gtopdb_skeleton();
        db.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        assert_eq!(db.relation("Family").unwrap().len(), 1);
        assert_eq!(db.total_tuples(), 1);
    }

    #[test]
    fn unknown_relation_errors() {
        let mut db = gtopdb_skeleton();
        assert!(db.insert("Nope", tuple!["x"]).is_err());
        assert!(db.relation("Nope").is_err());
    }

    #[test]
    fn integrity_accepts_satisfied_fk() {
        let mut db = gtopdb_skeleton();
        db.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        db.insert("FC", tuple!["11", "p1"]).unwrap();
        db.check_integrity().unwrap();
    }

    #[test]
    fn integrity_rejects_dangling_fk() {
        let mut db = gtopdb_skeleton();
        db.insert("FC", tuple!["99", "p1"]).unwrap();
        let err = db.check_integrity().unwrap_err();
        assert!(matches!(err, RelationError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn integrity_skips_null_fk() {
        let mut db = gtopdb_skeleton();
        db.insert("FC", tuple![crate::value::Value::Null, "p1"])
            .unwrap();
        db.check_integrity().unwrap();
    }

    #[test]
    fn default_indexes_cover_fk_columns() {
        let mut db = gtopdb_skeleton();
        db.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        db.insert("FC", tuple!["11", "p1"]).unwrap();
        db.build_default_indexes().unwrap();
        let fc = db.relation("FC").unwrap();
        assert!(fc.probe(0, &crate::value::Value::str("11")).is_some());
    }

    #[test]
    fn insert_all_counts_new_tuples() {
        let mut db = gtopdb_skeleton();
        let n = db
            .insert_all(
                "Family",
                vec![
                    tuple!["11", "Calcitonin", "gpcr"],
                    tuple!["11", "Calcitonin", "gpcr"],
                    tuple!["12", "Orexin", "gpcr"],
                ],
            )
            .unwrap();
        assert_eq!(n, 2);
    }
}
