//! Horizontally sharded storage: a [`ShardedDatabase`] partitions
//! every relation's tuples across `N` shards by a deterministic hash
//! of a configurable **shard-key column** (falling back to a
//! whole-tuple hash when no key column is configured).
//!
//! Each shard is a complete [`Database`] over the same catalog, so
//! the existing per-relation machinery (typed inserts, set semantics,
//! secondary hash indexes) works unchanged inside a shard. On top of
//! the shards the `ShardedDatabase` keeps, per relation, the **global
//! placement order**: the sequence `(shard, local position)` in
//! insertion order. This is what lets routed evaluation (see
//! `fgc_query::sharded`) visit tuples in exactly the order an
//! unsharded [`Database`] would, which in turn makes sharded
//! citations **byte-identical** to unsharded ones — Definition 3.2's
//! sum over bindings is preserved term by term, not just up to
//! reordering.
//!
//! Routing is value-based and deterministic ([`ShardKeySpec`] +
//! FNV-1a over the canonical value encoding), so an equality
//! selection on the shard key can be proven to touch a single shard:
//! every tuple matching `R.key = c` lives on shard `hash(c) % N`.
//! That proof is exactly what the query-side `ShardRouter` uses to
//! prune fan-out.

use crate::database::Database;
use crate::delta::{DatabaseDelta, DeltaOp};
use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::{Catalog, RelationSchema};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Deterministic 64-bit FNV-1a, used for shard routing. The std
/// `RandomState` is seeded per process, which would scatter the same
/// key to different shards across runs (and across the engine and the
/// router); routing must be a pure function of the value.
#[derive(Debug, Clone)]
pub struct ShardHasher(u64);

impl Default for ShardHasher {
    fn default() -> Self {
        ShardHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for ShardHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The shard a value routes to under `shards`-way partitioning.
/// Values that compare equal hash identically (`Value`'s `Hash`
/// contract), so `Int(2)` and `Float(2.0)` route together.
pub fn shard_of_value(value: &Value, shards: usize) -> usize {
    let mut h = ShardHasher::default();
    value.hash(&mut h);
    (h.finish() % shards.max(1) as u64) as usize
}

/// The shard a whole tuple routes to (fallback when a relation has no
/// configured shard-key column).
pub fn shard_of_tuple(tuple: &Tuple, shards: usize) -> usize {
    let mut h = ShardHasher::default();
    tuple.hash(&mut h);
    (h.finish() % shards.max(1) as u64) as usize
}

/// Which column each relation is partitioned on. Relations absent
/// from the spec fall back to whole-tuple hashing (still balanced,
/// but equality selections on them can never prune to one shard).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardKeySpec {
    columns: Vec<(String, String)>,
}

impl ShardKeySpec {
    /// An empty spec: every relation uses whole-tuple hashing.
    pub fn new() -> Self {
        ShardKeySpec::default()
    }

    /// Builder: partition `relation` on `column` (by attribute name).
    pub fn with(mut self, relation: impl Into<String>, column: impl Into<String>) -> Self {
        let (relation, column) = (relation.into(), column.into());
        self.columns.retain(|(r, _)| r != &relation);
        self.columns.push((relation, column));
        self
    }

    /// Parse the CLI syntax `Rel=Col,Rel2=Col2`. Whitespace around
    /// names is trimmed; an empty string is the empty spec.
    pub fn parse(text: &str) -> Result<ShardKeySpec> {
        let mut spec = ShardKeySpec::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((rel, col)) = part.split_once('=') else {
                return Err(RelationError::InvalidSchema(format!(
                    "shard-key entry `{part}` is not of the form Relation=Column"
                )));
            };
            let (rel, col) = (rel.trim(), col.trim());
            if rel.is_empty() || col.is_empty() {
                return Err(RelationError::InvalidSchema(format!(
                    "shard-key entry `{part}` is not of the form Relation=Column"
                )));
            }
            spec = spec.with(rel, col);
        }
        Ok(spec)
    }

    /// The configured column for a relation, if any.
    pub fn column(&self, relation: &str) -> Option<&str> {
        self.columns
            .iter()
            .find(|(r, _)| r == relation)
            .map(|(_, c)| c.as_str())
    }

    /// Is any relation configured?
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Resolve every configured column against a catalog. Unknown
    /// relations or attributes are errors (a typo would silently
    /// disable pruning otherwise).
    pub fn resolve(&self, catalog: &Catalog) -> Result<HashMap<String, usize>> {
        let mut resolved = HashMap::new();
        for (relation, column) in &self.columns {
            let schema = catalog.get(relation)?;
            resolved.insert(relation.clone(), schema.position(column)?);
        }
        Ok(resolved)
    }
}

impl fmt::Display for ShardKeySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (r, c)) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{r}={c}")?;
        }
        Ok(())
    }
}

/// One row's physical location: `(shard, local position)` inside the
/// shard's relation.
pub type Placement = (u32, u32);

/// Static distribution figures for diagnostics, `GET /stats`, and the
/// E11 table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Stored tuples per shard (all relations).
    pub tuples_per_shard: Vec<usize>,
    /// Total stored tuples.
    pub total_tuples: usize,
    /// The shard-key spec, rendered in CLI syntax.
    pub key_spec: String,
}

impl ShardStats {
    /// Largest shard divided by the ideal even share — 1.0 is a
    /// perfectly balanced partition.
    pub fn imbalance(&self) -> f64 {
        let max = self.tuples_per_shard.iter().copied().max().unwrap_or(0);
        if self.total_tuples == 0 {
            1.0
        } else {
            max as f64 / (self.total_tuples as f64 / self.shards.max(1) as f64)
        }
    }
}

/// A horizontally partitioned database: `N` shard [`Database`]s plus
/// the per-relation global placement order.
///
/// The per-relation bookkeeping (placement order, its inverse, the
/// global key guard) is `Arc`-shared so cloning a sharded database —
/// the first step of [`ShardedDatabase::derive_with_delta`] — costs
/// pointers; a relation's bookkeeping is deep-copied only when a
/// delta actually touches it (the shard [`Database`]s are themselves
/// copy-on-write at the relation level).
#[derive(Debug, Clone)]
pub struct ShardedDatabase {
    shards: Vec<Database>,
    /// Resolved shard-key column per relation (absent = whole-tuple).
    key_cols: HashMap<String, usize>,
    /// Per relation: global insertion order -> physical placement.
    placement: HashMap<String, Arc<Vec<Placement>>>,
    /// Per relation and shard: local position -> global rank (the
    /// inverse of `placement`, precomputed so routed evaluation can
    /// borrow it instead of rebuilding per query).
    global_ids: HashMap<String, Arc<Vec<Vec<usize>>>>,
    /// Global primary-key guard: shard-local key indexes cannot see
    /// a duplicate key whose tuple routed to a different shard.
    key_guard: HashMap<String, Arc<HashSet<Tuple>>>,
    spec: ShardKeySpec,
}

impl ShardedDatabase {
    /// An empty sharded database with `shards` partitions (clamped to
    /// at least one) under the given key spec.
    pub fn new(shards: usize, spec: ShardKeySpec) -> Self {
        ShardedDatabase {
            shards: (0..shards.max(1)).map(|_| Database::new()).collect(),
            key_cols: HashMap::new(),
            placement: HashMap::new(),
            global_ids: HashMap::new(),
            key_guard: HashMap::new(),
            spec,
        }
    }

    /// Partition an existing database: same catalog on every shard,
    /// every tuple routed by the spec, secondary indexes mirrored
    /// shard-locally so routed probes behave like unsharded probes.
    pub fn from_database(db: &Database, shards: usize, spec: ShardKeySpec) -> Result<Self> {
        let mut sharded = ShardedDatabase::new(shards, spec);
        for schema in db.catalog().iter() {
            sharded.create_relation(schema.as_ref().clone())?;
        }
        let names: Vec<String> = db.catalog().iter().map(|s| s.name.clone()).collect();
        for name in &names {
            let relation = db.relation(name)?;
            for row in relation.iter() {
                sharded.insert(name, row.clone())?;
            }
            for column in relation.indexed_columns() {
                sharded.build_index(name, column)?;
            }
        }
        Ok(sharded)
    }

    /// Register a schema on every shard. The shard-key column (if
    /// configured) is resolved and validated here.
    pub fn create_relation(&mut self, schema: RelationSchema) -> Result<()> {
        if let Some(column) = self.spec.column(&schema.name) {
            self.key_cols
                .insert(schema.name.clone(), schema.position(column)?);
        }
        let name = schema.name.clone();
        for shard in &mut self.shards {
            shard.create_relation(schema.clone())?;
        }
        self.placement.insert(name.clone(), Arc::new(Vec::new()));
        self.global_ids
            .insert(name.clone(), Arc::new(vec![Vec::new(); self.shards.len()]));
        self.key_guard.insert(name, Arc::new(HashSet::new()));
        Ok(())
    }

    /// The shard a tuple of `relation` routes to.
    pub fn route_tuple(&self, relation: &str, tuple: &Tuple) -> usize {
        match self.key_cols.get(relation) {
            Some(&col) if col < tuple.arity() => shard_of_value(&tuple[col], self.shards.len()),
            _ => shard_of_tuple(tuple, self.shards.len()),
        }
    }

    /// The shard an equality selection `relation.shard_key = value`
    /// is guaranteed to be confined to — `None` when the relation has
    /// no shard-key column (whole-tuple hashing spreads matches).
    pub fn route_value(&self, relation: &str, value: &Value) -> Option<usize> {
        self.key_cols
            .get(relation)
            .map(|_| shard_of_value(value, self.shards.len()))
    }

    /// Resolved shard-key column of a relation, if configured.
    pub fn shard_key_column(&self, relation: &str) -> Option<usize> {
        self.key_cols.get(relation).copied()
    }

    /// Insert one tuple, routed to its shard. Set semantics and key
    /// constraints match [`Database::insert`] exactly — including
    /// key violations whose two tuples live on different shards.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        let shard = self.route_tuple(relation, &tuple);
        // same check order as `Database::insert`: shape first, then
        // set-semantics dedup, then the key constraint — with the
        // *global* guard standing in for the key index, because the
        // shard-local one only sees its own fragment
        {
            let rel = self.shards[shard].relation(relation)?;
            rel.check_shape(&tuple)?;
            if rel.contains(&tuple) {
                return Ok(false);
            }
            let schema = rel.schema();
            if schema.has_key() {
                let key = tuple.project(&schema.key);
                let guard = self
                    .key_guard
                    .get_mut(relation)
                    .expect("relation registered");
                if guard.contains(&key) {
                    return Err(RelationError::KeyViolation {
                        relation: relation.to_string(),
                        key: key.to_string(),
                    });
                }
            }
        }
        let added = self.shards[shard].insert(relation, tuple)?;
        if added {
            let local = self.shards[shard].relation(relation)?.len() - 1;
            let placement = Arc::make_mut(
                self.placement
                    .get_mut(relation)
                    .expect("relation registered"),
            );
            let rank = placement.len();
            placement.push((shard as u32, local as u32));
            Arc::make_mut(
                self.global_ids
                    .get_mut(relation)
                    .expect("relation registered"),
            )[shard]
                .push(rank);
            let rel = self.shards[shard].relation(relation)?;
            let schema = rel.schema();
            if schema.has_key() {
                let key = rel.rows()[local].project(&schema.key);
                Arc::make_mut(
                    self.key_guard
                        .get_mut(relation)
                        .expect("relation registered"),
                )
                .insert(key);
            }
        }
        Ok(added)
    }

    /// Remove one tuple, preserving the global insertion order of the
    /// survivors — the sharded twin of [`Database::remove`]. Returns
    /// `true` if the tuple was stored. The removed row's shard
    /// compacts its local positions (exactly like
    /// [`Relation::remove`]), and the placement order, its inverse,
    /// and the key guard are patched to match, so a derived sharded
    /// database is structurally identical to re-partitioning the
    /// derived unsharded one.
    pub fn remove(&mut self, relation: &str, tuple: &Tuple) -> Result<bool> {
        let shard = self.route_tuple(relation, tuple);
        let (local, key) = {
            let rel = self.shards[shard].relation(relation)?;
            rel.check_shape(tuple)?;
            let Some(local) = rel.position_of(tuple) else {
                return Ok(false);
            };
            let schema = rel.schema();
            let key = schema.has_key().then(|| tuple.project(&schema.key));
            (local, key)
        };
        let removed = self.shards[shard].remove(relation, tuple)?;
        debug_assert!(removed, "position_of said the tuple was stored");
        let ids = Arc::make_mut(
            self.global_ids
                .get_mut(relation)
                .expect("relation registered"),
        );
        let rank = ids[shard][local];
        ids[shard].remove(local);
        for shard_ids in ids.iter_mut() {
            for r in shard_ids.iter_mut() {
                if *r > rank {
                    *r -= 1;
                }
            }
        }
        let placement = Arc::make_mut(
            self.placement
                .get_mut(relation)
                .expect("relation registered"),
        );
        placement.remove(rank);
        for p in placement.iter_mut() {
            if p.0 == shard as u32 && p.1 > local as u32 {
                p.1 -= 1;
            }
        }
        if let Some(key) = key {
            Arc::make_mut(
                self.key_guard
                    .get_mut(relation)
                    .expect("relation registered"),
            )
            .remove(&key);
        }
        Ok(true)
    }

    /// Replay a recorded delta onto the fragments in place — the
    /// sharded twin of [`Database::apply_delta`], with the same
    /// soundness contract: the base must be the delta's parent, every
    /// op must be effective again, and structural deltas abort with
    /// [`RelationError::DeltaMismatch`] (the database may then be
    /// partially updated and should be discarded).
    pub fn apply_delta(&mut self, delta: &DatabaseDelta) -> Result<()> {
        if delta.is_structural() {
            return Err(RelationError::DeltaMismatch(
                "structural delta cannot be replayed".into(),
            ));
        }
        for rd in delta.relations() {
            for op in &rd.ops {
                let effective = match op {
                    DeltaOp::Insert(t) => self.insert(&rd.relation, t.clone())?,
                    DeltaOp::Remove(t) => self.remove(&rd.relation, t)?,
                };
                if !effective {
                    return Err(RelationError::DeltaMismatch(format!(
                        "op had no effect on `{}`: base is not the delta's parent",
                        rd.relation
                    )));
                }
            }
        }
        Ok(())
    }

    /// Derive the child version's sharded database by replaying a
    /// delta into the existing fragments: an O(changed) alternative
    /// to [`ShardedDatabase::from_database`] re-partitioning. The
    /// clone structurally shares every fragment and bookkeeping
    /// vector with `self`; only delta-touched relations are unshared
    /// (copy-on-write) during replay.
    pub fn derive_with_delta(&self, delta: &DatabaseDelta) -> Result<ShardedDatabase> {
        let mut derived = self.clone();
        derived.apply_delta(delta)?;
        Ok(derived)
    }

    /// Insert many tuples into one relation, returning the number
    /// actually added.
    pub fn insert_all<I>(&mut self, relation: &str, tuples: I) -> Result<usize>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut added = 0;
        for t in tuples {
            if self.insert(relation, t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Build a secondary hash index on `column` in every shard.
    pub fn build_index(&mut self, relation: &str, column: usize) -> Result<()> {
        for shard in &mut self.shards {
            shard.relation_mut(relation)?.build_index(column)?;
        }
        Ok(())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard databases, in shard order.
    pub fn shards(&self) -> &[Database] {
        &self.shards
    }

    /// The catalog (identical on every shard).
    pub fn catalog(&self) -> &Catalog {
        self.shards[0].catalog()
    }

    /// The configured key spec.
    pub fn spec(&self) -> &ShardKeySpec {
        &self.spec
    }

    /// A relation's fragment on every shard, in shard order.
    pub fn fragments(&self, relation: &str) -> Result<Vec<&Relation>> {
        self.shards.iter().map(|s| s.relation(relation)).collect()
    }

    /// A relation's global placement order: entry `g` is the physical
    /// location of the tuple that an unsharded database would store
    /// at row position `g`.
    pub fn placement(&self, relation: &str) -> Result<&[Placement]> {
        self.placement
            .get(relation)
            .map(|v| v.as_slice())
            .ok_or_else(|| RelationError::UnknownRelation(relation.to_string()))
    }

    /// The inverse of [`Self::placement`], per shard: entry `s[l]` is
    /// the global rank of shard `s`'s local row `l` (ascending, since
    /// locals are appended in global order). Routed evaluation borrows
    /// these instead of rebuilding the mapping per query.
    pub fn shard_global_ids(&self, relation: &str) -> Result<&[Vec<usize>]> {
        self.global_ids
            .get(relation)
            .map(|v| v.as_slice())
            .ok_or_else(|| RelationError::UnknownRelation(relation.to_string()))
    }

    /// Total number of stored tuples across shards.
    pub fn total_tuples(&self) -> usize {
        self.shards.iter().map(Database::total_tuples).sum()
    }

    /// Distribution statistics.
    pub fn stats(&self) -> ShardStats {
        let tuples_per_shard: Vec<usize> = self.shards.iter().map(Database::total_tuples).collect();
        ShardStats {
            shards: self.shards.len(),
            total_tuples: tuples_per_shard.iter().sum(),
            tuples_per_shard,
            key_spec: self.spec.to_string(),
        }
    }

    /// Reassemble the unsharded database: every relation's tuples in
    /// global insertion order. Mostly for tests and migrations.
    pub fn assemble(&self) -> Result<Database> {
        let mut db = Database::new();
        for schema in self.catalog().iter() {
            db.create_relation(schema.as_ref().clone())?;
        }
        let names: Vec<String> = self.catalog().iter().map(|s| s.name.clone()).collect();
        for name in &names {
            for &(shard, local) in self.placement(name)? {
                let row =
                    self.shards[shard as usize].relation(name)?.rows()[local as usize].clone();
                db.insert(name, row)?;
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::DataType;

    fn family_schema() -> RelationSchema {
        RelationSchema::with_names(
            "Family",
            &[
                ("FID", DataType::Str),
                ("FName", DataType::Str),
                ("Type", DataType::Str),
            ],
            &["FID"],
        )
        .unwrap()
    }

    fn sample(shards: usize) -> ShardedDatabase {
        let mut s = ShardedDatabase::new(shards, ShardKeySpec::new().with("Family", "FID"));
        s.create_relation(family_schema()).unwrap();
        for i in 0..20 {
            s.insert(
                "Family",
                tuple![format!("f{i}"), format!("Name{i}"), "gpcr"],
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn routing_is_deterministic_and_value_based() {
        let s = sample(4);
        let t = tuple!["f3", "Name3", "gpcr"];
        assert_eq!(s.route_tuple("Family", &t), s.route_tuple("Family", &t));
        assert_eq!(
            s.route_tuple("Family", &t),
            s.route_value("Family", &Value::str("f3")).unwrap()
        );
        // numeric values that compare equal route identically
        assert_eq!(
            shard_of_value(&Value::Int(2), 7),
            shard_of_value(&Value::Float(2.0), 7)
        );
    }

    #[test]
    fn placement_preserves_global_insertion_order() {
        let s = sample(4);
        let assembled = s.assemble().unwrap();
        let rows = assembled.relation("Family").unwrap().rows();
        assert_eq!(rows.len(), 20);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], Value::str(format!("f{i}")));
        }
    }

    #[test]
    fn shards_partition_all_tuples() {
        let s = sample(4);
        assert_eq!(s.total_tuples(), 20);
        let stats = s.stats();
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.total_tuples, 20);
        assert_eq!(stats.tuples_per_shard.iter().sum::<usize>(), 20);
        assert!(stats.key_spec.contains("Family=FID"));
        // more than one shard actually holds data at this size
        assert!(stats.tuples_per_shard.iter().filter(|&&n| n > 0).count() > 1);
    }

    #[test]
    fn duplicate_tuple_is_noop_across_shards() {
        let mut s = sample(2);
        assert!(!s.insert("Family", tuple!["f3", "Name3", "gpcr"]).unwrap());
        assert_eq!(s.total_tuples(), 20);
    }

    #[test]
    fn key_violation_detected_even_across_shards() {
        // whole-tuple hashing: two tuples with the same key but
        // different payloads may route to different shards; the
        // global guard must still reject the second
        let mut s = ShardedDatabase::new(8, ShardKeySpec::new());
        s.create_relation(family_schema()).unwrap();
        s.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        let mut rejected = false;
        for i in 0..16 {
            let result = s.insert("Family", tuple!["11", format!("Other{i}"), "gpcr"]);
            match result {
                Err(RelationError::KeyViolation { .. }) => rejected = true,
                other => panic!("expected key violation, got {other:?}"),
            }
        }
        assert!(rejected);
        assert_eq!(s.total_tuples(), 1);
    }

    #[test]
    fn shape_errors_win_over_the_key_guard() {
        // a mistyped tuple with a duplicate key must report the shape
        // problem, exactly like Database::insert would
        let mut s = sample(2);
        let err = s.insert("Family", tuple!["f3", 5, "gpcr"]).unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }), "{err:?}");
        let err = s.insert("Family", tuple!["f3", "x"]).unwrap_err();
        assert!(
            matches!(err, RelationError::ArityMismatch { .. }),
            "{err:?}"
        );
        assert_eq!(s.total_tuples(), 20);
    }

    #[test]
    fn global_ids_invert_placement() {
        let s = sample(4);
        let placement = s.placement("Family").unwrap();
        let ids = s.shard_global_ids("Family").unwrap();
        for (g, &(shard, local)) in placement.iter().enumerate() {
            assert_eq!(ids[shard as usize][local as usize], g);
        }
        // per-shard locals appear in ascending global order
        for shard_ids in ids {
            assert!(shard_ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn from_database_round_trips() {
        let mut db = Database::new();
        db.create_relation(family_schema()).unwrap();
        for i in 0..15 {
            db.insert(
                "Family",
                tuple![format!("f{i}"), format!("Name{i}"), "gpcr"],
            )
            .unwrap();
        }
        db.relation_mut("Family").unwrap().build_index(2).unwrap();
        let s = ShardedDatabase::from_database(&db, 3, ShardKeySpec::new().with("Family", "FID"))
            .unwrap();
        assert_eq!(s.total_tuples(), 15);
        let assembled = s.assemble().unwrap();
        assert_eq!(
            assembled.relation("Family").unwrap().rows(),
            db.relation("Family").unwrap().rows()
        );
        // the secondary index was mirrored into each shard
        for fragment in s.fragments("Family").unwrap() {
            assert!(fragment.probe(2, &Value::str("gpcr")).is_some());
        }
    }

    #[test]
    fn spec_parse_and_display_round_trip() {
        let spec = ShardKeySpec::parse("Family=FID, FC = FID").unwrap();
        assert_eq!(spec.column("Family"), Some("FID"));
        assert_eq!(spec.column("FC"), Some("FID"));
        assert_eq!(spec.column("Person"), None);
        let rendered = spec.to_string();
        assert_eq!(ShardKeySpec::parse(&rendered).unwrap(), spec);
        assert!(ShardKeySpec::parse("oops").is_err());
        assert!(ShardKeySpec::parse("=FID").is_err());
        assert!(ShardKeySpec::parse("").unwrap().is_empty());
    }

    #[test]
    fn spec_resolve_validates_names() {
        let mut db = Database::new();
        db.create_relation(family_schema()).unwrap();
        let ok = ShardKeySpec::new().with("Family", "FID");
        assert_eq!(ok.resolve(db.catalog()).unwrap()["Family"], 0);
        let bad_col = ShardKeySpec::new().with("Family", "Nope");
        assert!(bad_col.resolve(db.catalog()).is_err());
        let bad_rel = ShardKeySpec::new().with("Nope", "FID");
        assert!(bad_rel.resolve(db.catalog()).is_err());
    }

    #[test]
    fn unknown_shard_key_column_rejected_at_create() {
        let mut s = ShardedDatabase::new(2, ShardKeySpec::new().with("Family", "Bogus"));
        assert!(s.create_relation(family_schema()).is_err());
    }

    #[test]
    fn remove_preserves_global_order_and_key_guard() {
        let mut s = sample(4);
        assert!(s.remove("Family", &tuple!["f7", "Name7", "gpcr"]).unwrap());
        assert!(!s.remove("Family", &tuple!["f7", "Name7", "gpcr"]).unwrap());
        assert_eq!(s.total_tuples(), 19);
        // placement still inverts global_ids after compaction
        let placement = s.placement("Family").unwrap();
        let ids = s.shard_global_ids("Family").unwrap();
        for (g, &(shard, local)) in placement.iter().enumerate() {
            assert_eq!(ids[shard as usize][local as usize], g);
        }
        // global order of survivors is the unsharded removal order
        let assembled = s.assemble().unwrap();
        let fids: Vec<String> = assembled
            .relation("Family")
            .unwrap()
            .iter()
            .map(|t| t[0].to_string())
            .collect();
        let expected: Vec<String> = (0..20)
            .filter(|&i| i != 7)
            .map(|i| format!("f{i}"))
            .collect();
        assert_eq!(fids, expected);
        // the key is reusable after removal (guard was patched)
        assert!(s.insert("Family", tuple!["f7", "Again", "gpcr"]).unwrap());
    }

    #[test]
    fn derive_with_delta_matches_repartitioning() {
        let mut db = Database::new();
        db.create_relation(family_schema()).unwrap();
        for i in 0..30 {
            db.insert(
                "Family",
                tuple![format!("f{i}"), format!("Name{i}"), "gpcr"],
            )
            .unwrap();
        }
        db.relation_mut("Family").unwrap().build_index(2).unwrap();
        let spec = ShardKeySpec::new().with("Family", "FID");
        let parent_sharded = ShardedDatabase::from_database(&db, 4, spec.clone()).unwrap();

        let mut child = db.clone();
        child.begin_delta();
        child
            .remove("Family", &tuple!["f3", "Name3", "gpcr"])
            .unwrap();
        child
            .remove("Family", &tuple!["f19", "Name19", "gpcr"])
            .unwrap();
        child
            .insert("Family", tuple!["f99", "Name99", "enzyme"])
            .unwrap();
        let delta = child.take_delta();

        let derived = parent_sharded.derive_with_delta(&delta).unwrap();
        let repartitioned = ShardedDatabase::from_database(&child, 4, spec).unwrap();
        // identical fragments: same rows in the same local order
        for (a, b) in derived.shards().iter().zip(repartitioned.shards()) {
            assert_eq!(
                a.relation("Family").unwrap().rows(),
                b.relation("Family").unwrap().rows()
            );
            assert_eq!(
                a.relation("Family").unwrap().indexed_columns(),
                b.relation("Family").unwrap().indexed_columns()
            );
        }
        // identical bookkeeping
        assert_eq!(
            derived.placement("Family").unwrap(),
            repartitioned.placement("Family").unwrap()
        );
        assert_eq!(
            derived.shard_global_ids("Family").unwrap(),
            repartitioned.shard_global_ids("Family").unwrap()
        );
        // and the parent was untouched (copy-on-write)
        assert_eq!(parent_sharded.total_tuples(), 30);
        assert!(parent_sharded
            .assemble()
            .unwrap()
            .relation("Family")
            .unwrap()
            .contains(&tuple!["f3", "Name3", "gpcr"]));
    }

    #[test]
    fn sharded_apply_delta_rejects_structural_and_diverged() {
        let mut db = Database::new();
        db.create_relation(family_schema()).unwrap();
        db.insert("Family", tuple!["f1", "Name1", "gpcr"]).unwrap();
        let mut s =
            ShardedDatabase::from_database(&db, 2, ShardKeySpec::new().with("Family", "FID"))
                .unwrap();
        // ineffective op (tuple already present) is divergence
        let mut child = db.clone();
        child.begin_delta();
        child.insert("Family", tuple!["f1", "Name1", "gpcr"]).ok();
        child
            .insert("Family", tuple!["f2", "Name2", "gpcr"])
            .unwrap();
        let delta = child.take_delta();
        s.apply_delta(&delta).unwrap();
        assert!(matches!(
            s.apply_delta(&delta).unwrap_err(),
            RelationError::DeltaMismatch(_)
        ));
    }

    #[test]
    fn one_shard_degenerates_to_a_database() {
        let s = sample(1);
        assert_eq!(s.shard_count(), 1);
        assert_eq!(s.shards()[0].total_tuples(), 20);
        let placement = s.placement("Family").unwrap();
        for (i, &(shard, local)) in placement.iter().enumerate() {
            assert_eq!(shard, 0);
            assert_eq!(local as usize, i);
        }
    }
}
