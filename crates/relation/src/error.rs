//! Error types for the relational substrate.

use std::fmt;

/// Errors raised by schema validation, data loading, and integrity
/// enforcement in the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A relation name was looked up but is not present in the catalog.
    UnknownRelation(String),
    /// An attribute name was looked up but is not part of the schema.
    UnknownAttribute {
        /// Relation in which the attribute was sought.
        relation: String,
        /// The missing attribute.
        attribute: String,
    },
    /// A tuple's arity does not match its relation schema.
    ArityMismatch {
        /// Relation being inserted into.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A tuple's value has the wrong type for its column.
    TypeMismatch {
        /// Relation being inserted into.
        relation: String,
        /// Attribute with the mismatched value.
        attribute: String,
        /// Type declared by the schema.
        expected: String,
        /// Type of the offending value.
        actual: String,
    },
    /// Inserting a tuple would duplicate an existing primary key.
    KeyViolation {
        /// Relation being inserted into.
        relation: String,
        /// Rendered key values.
        key: String,
    },
    /// A foreign key points at a non-existent referenced tuple.
    ForeignKeyViolation {
        /// Referencing relation.
        relation: String,
        /// Referenced relation.
        references: String,
        /// Rendered dangling key values.
        key: String,
    },
    /// A schema definition is internally inconsistent.
    InvalidSchema(String),
    /// A relation with this name already exists in the catalog.
    DuplicateRelation(String),
    /// Errors from the plain-text loader.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A version id was requested that does not exist.
    UnknownVersion(u64),
    /// A commit delta could not be replayed (structural change, or
    /// the base database is not the delta's parent version).
    DeltaMismatch(String),
    /// A storage backend failed: unusable data directory, corrupt
    /// manifest/segment/WAL, or a history that diverged from the
    /// persisted chain.
    Storage(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            RelationError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "unknown attribute `{attribute}` in relation `{relation}`"),
            RelationError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for `{relation}`: schema has {expected} attributes, tuple has {actual}"
            ),
            RelationError::TypeMismatch {
                relation,
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch for `{relation}.{attribute}`: expected {expected}, got {actual}"
            ),
            RelationError::KeyViolation { relation, key } => {
                write!(f, "key violation in `{relation}`: duplicate key {key}")
            }
            RelationError::ForeignKeyViolation {
                relation,
                references,
                key,
            } => write!(
                f,
                "foreign key violation: `{relation}` references `{references}` with missing key {key}"
            ),
            RelationError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            RelationError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` already exists")
            }
            RelationError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            RelationError::UnknownVersion(v) => write!(f, "unknown database version {v}"),
            RelationError::DeltaMismatch(msg) => write!(f, "delta not applicable: {msg}"),
            RelationError::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for RelationError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, RelationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_relation() {
        let err = RelationError::UnknownRelation("Family".into());
        assert_eq!(err.to_string(), "unknown relation `Family`");
    }

    #[test]
    fn display_arity_mismatch_mentions_counts() {
        let err = RelationError::ArityMismatch {
            relation: "Person".into(),
            expected: 3,
            actual: 2,
        };
        let msg = err.to_string();
        assert!(msg.contains("Person"));
        assert!(msg.contains('3'));
        assert!(msg.contains('2'));
    }

    #[test]
    fn display_fk_violation() {
        let err = RelationError::ForeignKeyViolation {
            relation: "FC".into(),
            references: "Family".into(),
            key: "(\"99\")".into(),
        };
        assert!(err.to_string().contains("FC"));
        assert!(err.to_string().contains("Family"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            RelationError::UnknownVersion(4),
            RelationError::UnknownVersion(4)
        );
        assert_ne!(
            RelationError::UnknownVersion(4),
            RelationError::UnknownVersion(5)
        );
    }
}
