//! Versioned databases — the paper's *fixity* requirement (§4).
//!
//! > "data may evolve over time, and citations should bring back the
//! > data as seen at the time it was cited. Thus data sources must
//! > support versioning, and citations must include timestamps or
//! > version numbers."
//!
//! [`VersionedDatabase`] keeps an append-only chain of immutable
//! snapshots. Each commit stores a full [`Database`] clone behind an
//! `Arc`; at the scale of curated scientific databases (GtoPdb has
//! tens of versions, released quarterly) snapshot-per-version is the
//! honest baseline, and sharing `Arc<str>` values keeps copies cheap.
//! Experiment E8 measures this design.
//!
//! Commits made through [`VersionedDatabase::commit_with`]
//! additionally record a [`DatabaseDelta`] — the effective inserts
//! and removals the commit performed — retrievable via
//! [`VersionedDatabase::delta`]. Consumers holding state for version
//! *v* (e.g. a citation engine) can replay the delta to reach *v+1*
//! instead of rebuilding from the snapshot; experiment E13 measures
//! that path.

use crate::database::Database;
use crate::delta::DatabaseDelta;
use crate::error::{RelationError, Result};
use std::fmt;
use std::sync::Arc;

/// Identifier of a committed version (0 = first commit).
pub type VersionId = u64;

/// Metadata attached to a committed version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionInfo {
    /// Sequential id, starting at 0.
    pub id: VersionId,
    /// Caller-supplied logical timestamp (e.g. seconds since epoch or
    /// a curation-release counter). Must be non-decreasing.
    pub timestamp: u64,
    /// Human-readable label, e.g. `"GtoPdb 23"`.
    pub label: String,
}

impl fmt::Display for VersionInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{} ({} @t={})", self.id, self.label, self.timestamp)
    }
}

/// One committed version: metadata, snapshot, and (when known) the
/// delta that produced it from its predecessor.
#[derive(Debug, Clone)]
struct VersionEntry {
    info: VersionInfo,
    snapshot: Arc<Database>,
    /// Recorded by [`VersionedDatabase::commit_with`]; `None` for
    /// snapshots committed whole (no parent lineage is known).
    delta: Option<Arc<DatabaseDelta>>,
}

/// An append-only chain of immutable database snapshots.
#[derive(Debug, Clone, Default)]
pub struct VersionedDatabase {
    versions: Vec<VersionEntry>,
}

impl VersionedDatabase {
    /// Empty history.
    pub fn new() -> Self {
        VersionedDatabase::default()
    }

    /// Commit a snapshot. Timestamps must be non-decreasing.
    pub fn commit(
        &mut self,
        db: Database,
        timestamp: u64,
        label: impl Into<String>,
    ) -> Result<VersionId> {
        if let Some(last) = self.versions.last() {
            if timestamp < last.info.timestamp {
                return Err(RelationError::InvalidSchema(format!(
                    "version timestamp {timestamp} precedes previous timestamp {}",
                    last.info.timestamp
                )));
            }
        }
        let id = self.versions.len() as VersionId;
        self.versions.push(VersionEntry {
            info: VersionInfo {
                id,
                timestamp,
                label: label.into(),
            },
            snapshot: Arc::new(db),
            delta: None,
        });
        Ok(id)
    }

    /// Derive the next version by mutating a copy of the head snapshot.
    ///
    /// The closure receives a working copy; the mutated copy becomes
    /// the new head. Errors from the closure abort the commit. The
    /// effective ops the closure performs are captured as the new
    /// version's [`delta`](Self::delta).
    pub fn commit_with<F>(
        &mut self,
        timestamp: u64,
        label: impl Into<String>,
        mutate: F,
    ) -> Result<VersionId>
    where
        F: FnOnce(&mut Database) -> Result<()>,
    {
        // Version 0 has no parent to replay from ([`Self::delta`]
        // documents `None` there), so don't record its ops at all —
        // the log of a from-scratch first commit can be as large as
        // the whole initial load.
        let (mut working, record) = match self.head() {
            Some((_, db)) => ((**db).clone(), true),
            None => (Database::new(), false),
        };
        if record {
            working.begin_delta();
        }
        mutate(&mut working)?;
        let delta = record.then(|| Arc::new(working.take_delta()));
        let id = self.commit(working, timestamp, label)?;
        self.versions[id as usize].delta = delta;
        Ok(id)
    }

    /// Append a version reconstructed by a storage backend: metadata,
    /// snapshot, and (when the backend preserved one) the delta that
    /// produced it. Enforces the same invariants as live commits —
    /// sequential ids and non-decreasing timestamps — so a reloaded
    /// chain is indistinguishable from the one that was persisted.
    pub(crate) fn restore(
        &mut self,
        info: VersionInfo,
        snapshot: Arc<Database>,
        delta: Option<Arc<DatabaseDelta>>,
    ) -> Result<()> {
        if info.id != self.versions.len() as VersionId {
            return Err(RelationError::Storage(format!(
                "restored version id {} out of order (expected {})",
                info.id,
                self.versions.len()
            )));
        }
        if let Some(last) = self.versions.last() {
            if info.timestamp < last.info.timestamp {
                return Err(RelationError::Storage(format!(
                    "restored version timestamp {} precedes previous timestamp {}",
                    info.timestamp, last.info.timestamp
                )));
            }
        }
        self.versions.push(VersionEntry {
            info,
            snapshot,
            delta,
        });
        Ok(())
    }

    /// Number of committed versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Is the history empty?
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// The most recent version, if any.
    pub fn head(&self) -> Option<(&VersionInfo, &Arc<Database>)> {
        self.versions.last().map(|e| (&e.info, &e.snapshot))
    }

    /// Snapshot by version id.
    pub fn snapshot(&self, id: VersionId) -> Result<(&VersionInfo, &Arc<Database>)> {
        self.versions
            .get(id as usize)
            .map(|e| (&e.info, &e.snapshot))
            .ok_or(RelationError::UnknownVersion(id))
    }

    /// The delta that produced version `id` from version `id - 1`.
    /// `None` when unknown: version 0, snapshots committed whole via
    /// [`commit`](Self::commit), or an id out of range.
    pub fn delta(&self, id: VersionId) -> Option<&Arc<DatabaseDelta>> {
        if id == 0 {
            return None;
        }
        self.versions.get(id as usize)?.delta.as_ref()
    }

    /// Latest version whose timestamp is `<= at` — "the data as seen
    /// at the time it was cited".
    pub fn snapshot_at(&self, at: u64) -> Option<(&VersionInfo, &Arc<Database>)> {
        // Versions are timestamp-sorted by construction: binary search.
        let idx = self.versions.partition_point(|e| e.info.timestamp <= at);
        idx.checked_sub(1)
            .map(|i| (&self.versions[i].info, &self.versions[i].snapshot))
    }

    /// Iterate over `(info, snapshot)` pairs oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = (&VersionInfo, &Arc<Database>)> {
        self.versions.iter().map(|e| (&e.info, &e.snapshot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;
    use crate::value::DataType;

    fn base() -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::with_names("R", &[("x", DataType::Int)], &["x"]).unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn commit_and_snapshot() {
        let mut v = VersionedDatabase::new();
        let id0 = v.commit(base(), 100, "v0").unwrap();
        assert_eq!(id0, 0);
        let (info, db) = v.snapshot(0).unwrap();
        assert_eq!(info.label, "v0");
        assert_eq!(db.total_tuples(), 0);
    }

    #[test]
    fn commit_with_derives_from_head() {
        let mut v = VersionedDatabase::new();
        v.commit(base(), 100, "v0").unwrap();
        v.commit_with(200, "v1", |db| db.insert("R", tuple![1]).map(|_| ()))
            .unwrap();
        assert_eq!(v.snapshot(0).unwrap().1.total_tuples(), 0);
        assert_eq!(v.snapshot(1).unwrap().1.total_tuples(), 1);
    }

    #[test]
    fn snapshots_are_immutable_under_later_commits() {
        let mut v = VersionedDatabase::new();
        v.commit(base(), 100, "v0").unwrap();
        for ts in 1..5u64 {
            v.commit_with(100 + ts, format!("v{ts}"), |db| {
                db.insert("R", tuple![ts as i64]).map(|_| ())
            })
            .unwrap();
        }
        for (i, (_, db)) in v.iter().enumerate() {
            assert_eq!(db.total_tuples(), i);
        }
    }

    #[test]
    fn snapshot_at_picks_latest_not_after() {
        let mut v = VersionedDatabase::new();
        v.commit(base(), 100, "v0").unwrap();
        v.commit_with(200, "v1", |_| Ok(())).unwrap();
        v.commit_with(300, "v2", |_| Ok(())).unwrap();
        assert!(v.snapshot_at(99).is_none());
        assert_eq!(v.snapshot_at(100).unwrap().0.id, 0);
        assert_eq!(v.snapshot_at(250).unwrap().0.id, 1);
        assert_eq!(v.snapshot_at(1000).unwrap().0.id, 2);
    }

    #[test]
    fn decreasing_timestamp_rejected() {
        let mut v = VersionedDatabase::new();
        v.commit(base(), 100, "v0").unwrap();
        assert!(v.commit(base(), 50, "bad").is_err());
    }

    #[test]
    fn unknown_version_errors() {
        let v = VersionedDatabase::new();
        assert!(matches!(
            v.snapshot(3).unwrap_err(),
            RelationError::UnknownVersion(3)
        ));
    }

    #[test]
    fn commit_with_records_a_replayable_delta() {
        let mut v = VersionedDatabase::new();
        v.commit(base(), 100, "v0").unwrap();
        v.commit_with(200, "v1", |db| {
            db.insert("R", tuple![1]).map(|_| ())?;
            db.insert("R", tuple![2]).map(|_| ())
        })
        .unwrap();
        v.commit_with(300, "v2", |db| db.remove("R", &tuple![1]).map(|_| ()))
            .unwrap();
        let d1 = v.delta(1).expect("delta recorded");
        assert_eq!((d1.inserted(), d1.removed()), (2, 0));
        let d2 = v.delta(2).expect("delta recorded");
        assert_eq!((d2.inserted(), d2.removed()), (0, 1));
        // replaying delta 2 onto snapshot 1 reproduces snapshot 2
        let mut replayed = (**v.snapshot(1).unwrap().1).clone();
        replayed.apply_delta(d2).unwrap();
        assert!(replayed.content_eq(v.snapshot(2).unwrap().1));
        // plain commits and version 0 have no delta
        assert!(v.delta(0).is_none());
        assert!(v.delta(99).is_none());
        v.commit(base(), 400, "whole").unwrap();
        assert!(v.delta(3).is_none());
    }

    #[test]
    fn empty_commit_records_an_empty_delta() {
        let mut v = VersionedDatabase::new();
        v.commit(base(), 100, "v0").unwrap();
        v.commit_with(200, "v1", |_| Ok(())).unwrap();
        assert!(v.delta(1).unwrap().is_empty());
    }
}
