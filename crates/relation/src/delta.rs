//! Per-commit deltas — the change a commit made to a database.
//!
//! The paper's fixity requirement (§4) forces one immutable snapshot
//! per version, but serving citations over a long commit history must
//! not pay O(|DB|) per version touched. A [`DatabaseDelta`] records
//! what a commit actually did — the *effective* inserts and removals
//! per relation, in execution order — so a consumer holding version
//! *v* can reproduce version *v+1* by replay instead of rebuilding
//! from the snapshot.
//!
//! Replay is exact: applying the delta to a database that is
//! structurally identical to the parent snapshot yields a database
//! structurally identical to the child snapshot — same row order,
//! same index state — because [`crate::Relation::insert`] and
//! [`crate::Relation::remove`] are deterministic functions of state
//! and the log keeps their original order. That is what lets derived
//! citation engines stay byte-identical to rebuilt ones.
//!
//! Structural changes (creating relations, replacing schemas,
//! building indexes mid-commit) are not replayed; they flip the
//! [`DatabaseDelta::is_structural`] flag and consumers fall back to a
//! full rebuild.

use crate::tuple::Tuple;
use std::fmt;

/// One effective mutation recorded against a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// The tuple was inserted (it was not stored before).
    Insert(Tuple),
    /// The tuple was removed (it was stored before).
    Remove(Tuple),
}

/// The ordered effective ops a commit performed on one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDelta {
    /// Relation name.
    pub relation: String,
    /// Effective ops in execution order (no-op inserts of duplicate
    /// tuples and removes of absent tuples are never recorded).
    pub ops: Vec<DeltaOp>,
}

/// Everything one commit changed, relation by relation.
///
/// Ops on *different* relations commute (inserts and removes never
/// consult other relations), so the per-relation logs are kept in
/// catalog registration order; within one relation the op order is
/// the execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatabaseDelta {
    relations: Vec<RelationDelta>,
    structural: bool,
}

impl DatabaseDelta {
    /// Assemble a delta from per-relation logs.
    pub(crate) fn new(relations: Vec<RelationDelta>, structural: bool) -> Self {
        DatabaseDelta {
            relations,
            structural,
        }
    }

    /// Did the commit change schema-level structure (created a
    /// relation, replaced a schema, built an index)? Structural
    /// deltas cannot be replayed; consumers must rebuild.
    pub fn is_structural(&self) -> bool {
        self.structural
    }

    /// Per-relation logs, catalog order. Relations the commit never
    /// touched are absent.
    pub fn relations(&self) -> impl Iterator<Item = &RelationDelta> {
        self.relations.iter()
    }

    /// Names of the relations the commit touched.
    pub fn touched(&self) -> impl Iterator<Item = &str> {
        self.relations.iter().map(|r| r.relation.as_str())
    }

    /// Total number of effective ops.
    pub fn op_count(&self) -> usize {
        self.relations.iter().map(|r| r.ops.len()).sum()
    }

    /// Number of recorded inserts.
    pub fn inserted(&self) -> usize {
        self.count(|op| matches!(op, DeltaOp::Insert(_)))
    }

    /// Number of recorded removals.
    pub fn removed(&self) -> usize {
        self.count(|op| matches!(op, DeltaOp::Remove(_)))
    }

    /// No ops and no structural change (an empty commit).
    pub fn is_empty(&self) -> bool {
        !self.structural && self.relations.iter().all(|r| r.ops.is_empty())
    }

    fn count(&self, pred: impl Fn(&DeltaOp) -> bool) -> usize {
        self.relations
            .iter()
            .flat_map(|r| r.ops.iter())
            .filter(|op| pred(op))
            .count()
    }
}

impl fmt::Display for DatabaseDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delta(+{} -{}{})",
            self.inserted(),
            self.removed(),
            if self.structural { ", structural" } else { "" }
        )
    }
}

/// The in-flight log one [`crate::Relation`] keeps while its database
/// records a delta.
#[derive(Debug, Clone, Default)]
pub(crate) struct RelationLog {
    /// Effective ops in execution order.
    pub(crate) ops: Vec<DeltaOp>,
    /// An index was built on this relation mid-commit.
    pub(crate) structural: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn counts_and_emptiness() {
        let delta = DatabaseDelta::new(
            vec![RelationDelta {
                relation: "R".into(),
                ops: vec![
                    DeltaOp::Insert(tuple![1]),
                    DeltaOp::Insert(tuple![2]),
                    DeltaOp::Remove(tuple![1]),
                ],
            }],
            false,
        );
        assert_eq!(delta.op_count(), 3);
        assert_eq!(delta.inserted(), 2);
        assert_eq!(delta.removed(), 1);
        assert!(!delta.is_empty());
        assert!(!delta.is_structural());
        assert_eq!(delta.touched().collect::<Vec<_>>(), vec!["R"]);
        assert_eq!(delta.to_string(), "delta(+2 -1)");
    }

    #[test]
    fn structural_flag_blocks_emptiness() {
        let delta = DatabaseDelta::new(Vec::new(), true);
        assert!(delta.is_structural());
        assert!(!delta.is_empty());
        assert_eq!(delta.to_string(), "delta(+0 -0, structural)");
        assert!(DatabaseDelta::default().is_empty());
    }
}
