//! A single relation instance: schema + set of tuples + indexes.
//!
//! Storage is a row store with set semantics (the paper's model is
//! set-based conjunctive queries). A hash index over the primary key
//! enforces key constraints; secondary hash indexes over arbitrary
//! columns are built on demand and used by the query evaluator for
//! index-nested-loop joins.

use crate::delta::{DeltaOp, RelationLog};
use crate::error::{RelationError, Result};
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// One relation instance.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<RelationSchema>,
    rows: Vec<Tuple>,
    /// Set-semantics guard: every stored row, for O(1) duplicate checks.
    row_set: HashMap<Tuple, usize>,
    /// Primary-key index: key projection -> row position.
    key_index: HashMap<Tuple, usize>,
    /// Secondary indexes: column -> (value -> row positions).
    secondary: HashMap<usize, HashMap<Value, Vec<usize>>>,
    /// Effective-op log, recording while the owning database captures
    /// a commit delta (see [`crate::Database::begin_delta`]). Lives
    /// here rather than on the database so mutations through
    /// [`crate::Database::relation_mut`] are captured too.
    log: Option<RelationLog>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn new(schema: Arc<RelationSchema>) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
            row_set: HashMap::new(),
            key_index: HashMap::new(),
            secondary: HashMap::new(),
            log: None,
        }
    }

    /// Start recording effective ops (idempotent: an active log is
    /// kept).
    pub(crate) fn start_recording(&mut self) {
        if self.log.is_none() {
            self.log = Some(RelationLog::default());
        }
    }

    /// Stop recording and hand back the log (`None` when recording
    /// was never started).
    pub(crate) fn take_log(&mut self) -> Option<RelationLog> {
        self.log.take()
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// Swap in a replacement schema (same shape; see
    /// [`crate::schema::Catalog::replace`]). Stored rows and indexes
    /// are untouched — only constraint metadata may differ.
    pub(crate) fn set_schema(&mut self, schema: Arc<RelationSchema>) {
        debug_assert_eq!(self.schema.attributes, schema.attributes);
        self.schema = schema;
    }

    /// Relation name (shorthand).
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All tuples in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Iterate over tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }

    /// Check arity and column types of a candidate tuple (also used
    /// by the sharded store, which must report shape errors before
    /// its global key guard fires).
    pub(crate) fn check_shape(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, attr) in self.schema.attributes.iter().enumerate() {
            if !tuple[i].conforms_to(attr.ty) {
                return Err(RelationError::TypeMismatch {
                    relation: self.schema.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.ty.to_string(),
                    actual: tuple[i].data_type().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Insert a tuple. Duplicate tuples are ignored (set semantics);
    /// duplicate *keys* with different non-key columns are an error.
    /// Returns `true` if the tuple was actually added.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.check_shape(&tuple)?;
        if self.row_set.contains_key(&tuple) {
            return Ok(false);
        }
        if self.schema.has_key() {
            let key = tuple.project(&self.schema.key);
            if self.key_index.contains_key(&key) {
                return Err(RelationError::KeyViolation {
                    relation: self.schema.name.clone(),
                    key: key.to_string(),
                });
            }
            self.key_index.insert(key, self.rows.len());
        }
        let pos = self.rows.len();
        for (&col, index) in &mut self.secondary {
            index.entry(tuple[col].clone()).or_default().push(pos);
        }
        self.row_set.insert(tuple.clone(), pos);
        if let Some(log) = &mut self.log {
            log.ops.push(DeltaOp::Insert(tuple.clone()));
        }
        self.rows.push(tuple);
        Ok(true)
    }

    /// Remove a stored tuple. Returns `true` if it was present.
    ///
    /// Removal preserves insertion order for the surviving rows (the
    /// global tuple order that evaluation, sharding, and citations
    /// rely on): the row is taken out of the middle and every stored
    /// position past it shifts down — O(rows + index entries) per
    /// removal, the right trade for curated databases whose commits
    /// remove a handful of tuples.
    pub fn remove(&mut self, tuple: &Tuple) -> Result<bool> {
        self.check_shape(tuple)?;
        let Some(pos) = self.row_set.remove(tuple) else {
            return Ok(false);
        };
        self.rows.remove(pos);
        if self.schema.has_key() {
            self.key_index.remove(&tuple.project(&self.schema.key));
        }
        for p in self.row_set.values_mut() {
            if *p > pos {
                *p -= 1;
            }
        }
        for p in self.key_index.values_mut() {
            if *p > pos {
                *p -= 1;
            }
        }
        for (&col, index) in &mut self.secondary {
            if let Some(list) = index.get_mut(&tuple[col]) {
                list.retain(|&p| p != pos);
                if list.is_empty() {
                    index.remove(&tuple[col]);
                }
            }
            for list in index.values_mut() {
                for p in list {
                    if *p > pos {
                        *p -= 1;
                    }
                }
            }
        }
        if let Some(log) = &mut self.log {
            log.ops.push(DeltaOp::Remove(tuple.clone()));
        }
        Ok(true)
    }

    /// Whether an identical tuple is stored.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.row_set.contains_key(tuple)
    }

    /// Look up a row by primary key (key must match schema key arity).
    pub fn get_by_key(&self, key: &Tuple) -> Option<&Tuple> {
        self.key_index.get(key).map(|&i| &self.rows[i])
    }

    /// Ensure a secondary hash index exists on `column` and return it.
    pub fn build_index(&mut self, column: usize) -> Result<()> {
        if column >= self.schema.arity() {
            return Err(RelationError::UnknownAttribute {
                relation: self.schema.name.clone(),
                attribute: format!("#{column}"),
            });
        }
        if self.secondary.contains_key(&column) {
            return Ok(());
        }
        let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
        for (pos, row) in self.rows.iter().enumerate() {
            index.entry(row[column].clone()).or_default().push(pos);
        }
        self.secondary.insert(column, index);
        if let Some(log) = &mut self.log {
            // a mid-commit index build changes evaluation structure in
            // a way op replay cannot reproduce: force a rebuild
            log.structural = true;
        }
        Ok(())
    }

    /// Columns with a secondary hash index, in ascending order. Used
    /// to mirror index choices onto shard fragments.
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.secondary.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// Row positions whose `column` equals `value`, using a secondary
    /// index if one exists, otherwise `None` (caller should scan).
    pub fn probe(&self, column: usize, value: &Value) -> Option<&[usize]> {
        self.secondary
            .get(&column)
            .map(|idx| idx.get(value).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Rows whose `column` equals `value` (scans if no index exists).
    pub fn select_eq<'a>(&'a self, column: usize, value: &'a Value) -> Vec<&'a Tuple> {
        match self.probe(column, value) {
            Some(positions) => positions.iter().map(|&i| &self.rows[i]).collect(),
            None => self
                .rows
                .iter()
                .filter(|row| &row[column] == value)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;
    use crate::value::DataType;

    fn family() -> Relation {
        let schema = RelationSchema::with_names(
            "Family",
            &[
                ("FID", DataType::Str),
                ("FName", DataType::Str),
                ("Type", DataType::Str),
            ],
            &["FID"],
        )
        .unwrap();
        Relation::new(Arc::new(schema))
    }

    #[test]
    fn insert_and_lookup_by_key() {
        let mut r = family();
        assert!(r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap());
        assert_eq!(
            r.get_by_key(&tuple!["11"]),
            Some(&tuple!["11", "Calcitonin", "gpcr"])
        );
        assert_eq!(r.get_by_key(&tuple!["12"]), None);
    }

    #[test]
    fn duplicate_tuple_is_noop() {
        let mut r = family();
        assert!(r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap());
        assert!(!r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn conflicting_key_rejected() {
        let mut r = family();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap();
        let err = r.insert(tuple!["11", "Other", "gpcr"]).unwrap_err();
        assert!(matches!(err, RelationError::KeyViolation { .. }));
    }

    #[test]
    fn arity_checked() {
        let mut r = family();
        let err = r.insert(tuple!["11", "x"]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
    }

    #[test]
    fn type_checked() {
        let mut r = family();
        let err = r.insert(tuple![11, "x", "y"]).unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
    }

    #[test]
    fn null_conforms_to_column_type() {
        let mut r = family();
        r.insert(tuple!["11", crate::value::Value::Null, "gpcr"])
            .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn secondary_index_agrees_with_scan() {
        let mut r = family();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap();
        r.insert(tuple!["12", "Orexin", "gpcr"]).unwrap();
        r.insert(tuple!["13", "Kinase", "enzyme"]).unwrap();
        let scan: Vec<_> = r
            .select_eq(2, &Value::str("gpcr"))
            .into_iter()
            .cloned()
            .collect();
        r.build_index(2).unwrap();
        let indexed: Vec<_> = r
            .select_eq(2, &Value::str("gpcr"))
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(scan, indexed);
        assert_eq!(scan.len(), 2);
    }

    #[test]
    fn index_maintained_by_later_inserts() {
        let mut r = family();
        r.build_index(2).unwrap();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap();
        assert_eq!(r.probe(2, &Value::str("gpcr")).unwrap().len(), 1);
        assert_eq!(r.probe(2, &Value::str("nope")).unwrap().len(), 0);
    }

    #[test]
    fn build_index_out_of_range() {
        let mut r = family();
        assert!(r.build_index(9).is_err());
    }

    #[test]
    fn remove_preserves_row_order_and_indexes() {
        let mut r = family();
        r.build_index(2).unwrap();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap();
        r.insert(tuple!["12", "Orexin", "gpcr"]).unwrap();
        r.insert(tuple!["13", "Kinase", "enzyme"]).unwrap();
        assert!(r.remove(&tuple!["11", "Calcitonin", "gpcr"]).unwrap());
        // order preserved, positions shifted
        assert_eq!(
            r.rows(),
            &[
                tuple!["12", "Orexin", "gpcr"],
                tuple!["13", "Kinase", "enzyme"]
            ]
        );
        assert_eq!(r.get_by_key(&tuple!["11"]), None);
        assert_eq!(
            r.get_by_key(&tuple!["12"]),
            Some(&tuple!["12", "Orexin", "gpcr"])
        );
        assert_eq!(r.probe(2, &Value::str("gpcr")).unwrap(), &[0]);
        assert_eq!(r.probe(2, &Value::str("enzyme")).unwrap(), &[1]);
        // the key can be reused after removal
        r.insert(tuple!["11", "Calcitonin-2", "gpcr"]).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut r = family();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap();
        assert!(!r.remove(&tuple!["11", "Other", "gpcr"]).unwrap());
        assert_eq!(r.len(), 1);
        // shape is still checked
        assert!(r.remove(&tuple!["11"]).is_err());
    }

    #[test]
    fn recording_captures_effective_ops_only() {
        use crate::delta::DeltaOp;
        let mut r = family();
        r.insert(tuple!["10", "Pre", "gpcr"]).unwrap();
        r.start_recording();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap(); // duplicate: no-op
        r.remove(&tuple!["99", "Absent", "gpcr"]).unwrap(); // absent: no-op
        r.remove(&tuple!["10", "Pre", "gpcr"]).unwrap();
        let log = r.take_log().unwrap();
        assert_eq!(
            log.ops,
            vec![
                DeltaOp::Insert(tuple!["11", "Calcitonin", "gpcr"]),
                DeltaOp::Remove(tuple!["10", "Pre", "gpcr"]),
            ]
        );
        assert!(!log.structural);
        assert!(r.take_log().is_none());
    }

    #[test]
    fn index_build_while_recording_is_structural() {
        let mut r = family();
        r.start_recording();
        r.build_index(1).unwrap();
        assert!(r.take_log().unwrap().structural);
        // re-building an existing index is not structural
        let mut r2 = family();
        r2.build_index(1).unwrap();
        r2.start_recording();
        r2.build_index(1).unwrap();
        assert!(!r2.take_log().unwrap().structural);
    }
}
