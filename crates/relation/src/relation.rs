//! A single relation instance: schema + set of tuples + indexes.
//!
//! Storage is a row store with set semantics (the paper's model is
//! set-based conjunctive queries). A hash index over the primary key
//! enforces key constraints; secondary hash indexes over arbitrary
//! columns are built on demand and used by the query evaluator for
//! index-nested-loop joins.
//!
//! The row store itself — rows, set guard, key index, secondary
//! postings — lives in [`crate::storage::MemSegment`]; `Relation`
//! owns the schema, performs shape checking, and records the
//! effective-op log for commit deltas. Keeping the data plane in one
//! place is what lets the disk backend
//! ([`crate::storage::DiskStorage`]) reload a relation through the
//! exact same code path that built it.

use crate::delta::{DeltaOp, RelationLog};
use crate::error::{RelationError, Result};
use crate::schema::RelationSchema;
use crate::storage::MemSegment;
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

/// One relation instance.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<RelationSchema>,
    /// The row store: rows in insertion order plus hash indexes.
    segment: MemSegment,
    /// Effective-op log, recording while the owning database captures
    /// a commit delta (see [`crate::Database::begin_delta`]). Lives
    /// here rather than on the database so mutations through
    /// [`crate::Database::relation_mut`] are captured too.
    log: Option<RelationLog>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn new(schema: Arc<RelationSchema>) -> Self {
        Relation {
            schema,
            segment: MemSegment::new(),
            log: None,
        }
    }

    /// Start recording effective ops (idempotent: an active log is
    /// kept).
    pub(crate) fn start_recording(&mut self) {
        if self.log.is_none() {
            self.log = Some(RelationLog::default());
        }
    }

    /// Stop recording and hand back the log (`None` when recording
    /// was never started).
    pub(crate) fn take_log(&mut self) -> Option<RelationLog> {
        self.log.take()
    }

    /// Whether an effective-op log is attached (i.e. this relation
    /// saw a mutable access since recording began).
    pub(crate) fn has_log(&self) -> bool {
        self.log.is_some()
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// Swap in a replacement schema (same shape; see
    /// [`crate::schema::Catalog::replace`]). Stored rows and indexes
    /// are untouched — only constraint metadata may differ.
    pub(crate) fn set_schema(&mut self, schema: Arc<RelationSchema>) {
        debug_assert_eq!(self.schema.attributes, schema.attributes);
        self.schema = schema;
    }

    /// Relation name (shorthand).
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.segment.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.segment.is_empty()
    }

    /// All tuples in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        self.segment.rows()
    }

    /// Iterate over tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.segment.rows().iter()
    }

    /// Check arity and column types of a candidate tuple (also used
    /// by the sharded store, which must report shape errors before
    /// its global key guard fires).
    pub(crate) fn check_shape(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, attr) in self.schema.attributes.iter().enumerate() {
            if !tuple[i].conforms_to(attr.ty) {
                return Err(RelationError::TypeMismatch {
                    relation: self.schema.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.ty.to_string(),
                    actual: tuple[i].data_type().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Insert a tuple. Duplicate tuples are ignored (set semantics);
    /// duplicate *keys* with different non-key columns are an error.
    /// Returns `true` if the tuple was actually added.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.check_shape(&tuple)?;
        if !self.segment.insert(&self.schema, tuple.clone())? {
            return Ok(false);
        }
        if let Some(log) = &mut self.log {
            log.ops.push(DeltaOp::Insert(tuple));
        }
        Ok(true)
    }

    /// Remove a stored tuple. Returns `true` if it was present.
    ///
    /// Removal preserves insertion order for the surviving rows (see
    /// [`MemSegment::remove`]).
    pub fn remove(&mut self, tuple: &Tuple) -> Result<bool> {
        self.check_shape(tuple)?;
        if !self.segment.remove(&self.schema, tuple) {
            return Ok(false);
        }
        if let Some(log) = &mut self.log {
            log.ops.push(DeltaOp::Remove(tuple.clone()));
        }
        Ok(true)
    }

    /// Whether an identical tuple is stored.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.segment.contains(tuple)
    }

    /// The row position of a stored tuple, if present.
    pub fn position_of(&self, tuple: &Tuple) -> Option<usize> {
        self.segment.position_of(tuple)
    }

    /// Look up a row by primary key (key must match schema key arity).
    pub fn get_by_key(&self, key: &Tuple) -> Option<&Tuple> {
        self.segment.get_by_key(key)
    }

    /// Ensure a secondary hash index exists on `column` and return it.
    pub fn build_index(&mut self, column: usize) -> Result<()> {
        if column >= self.schema.arity() {
            return Err(RelationError::UnknownAttribute {
                relation: self.schema.name.clone(),
                attribute: format!("#{column}"),
            });
        }
        if self.segment.build_index(column) {
            if let Some(log) = &mut self.log {
                // a mid-commit index build changes evaluation structure
                // in a way op replay cannot reproduce: force a rebuild
                log.structural = true;
            }
        }
        Ok(())
    }

    /// Columns with a secondary hash index, in ascending order. Used
    /// to mirror index choices onto shard fragments and to persist
    /// index state in segment files.
    pub fn indexed_columns(&self) -> Vec<usize> {
        self.segment.indexed_columns()
    }

    /// Row positions whose `column` equals `value`, using a secondary
    /// index if one exists, otherwise `None` (caller should scan).
    pub fn probe(&self, column: usize, value: &Value) -> Option<&[usize]> {
        self.segment.probe(column, value)
    }

    /// Rough resident size of this relation's data in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.segment.approx_bytes()
    }

    /// Rows whose `column` equals `value` (scans if no index exists).
    pub fn select_eq<'a>(&'a self, column: usize, value: &'a Value) -> Vec<&'a Tuple> {
        match self.probe(column, value) {
            Some(positions) => positions.iter().map(|&i| &self.rows()[i]).collect(),
            None => self
                .rows()
                .iter()
                .filter(|row| &row[column] == value)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;
    use crate::value::DataType;

    fn family() -> Relation {
        let schema = RelationSchema::with_names(
            "Family",
            &[
                ("FID", DataType::Str),
                ("FName", DataType::Str),
                ("Type", DataType::Str),
            ],
            &["FID"],
        )
        .unwrap();
        Relation::new(Arc::new(schema))
    }

    #[test]
    fn insert_and_lookup_by_key() {
        let mut r = family();
        assert!(r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap());
        assert_eq!(
            r.get_by_key(&tuple!["11"]),
            Some(&tuple!["11", "Calcitonin", "gpcr"])
        );
        assert_eq!(r.get_by_key(&tuple!["12"]), None);
    }

    #[test]
    fn duplicate_tuple_is_noop() {
        let mut r = family();
        assert!(r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap());
        assert!(!r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn conflicting_key_rejected() {
        let mut r = family();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap();
        let err = r.insert(tuple!["11", "Other", "gpcr"]).unwrap_err();
        assert!(matches!(err, RelationError::KeyViolation { .. }));
    }

    #[test]
    fn arity_checked() {
        let mut r = family();
        let err = r.insert(tuple!["11", "x"]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
    }

    #[test]
    fn type_checked() {
        let mut r = family();
        let err = r.insert(tuple![11, "x", "y"]).unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
    }

    #[test]
    fn null_conforms_to_column_type() {
        let mut r = family();
        r.insert(tuple!["11", crate::value::Value::Null, "gpcr"])
            .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn secondary_index_agrees_with_scan() {
        let mut r = family();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap();
        r.insert(tuple!["12", "Orexin", "gpcr"]).unwrap();
        r.insert(tuple!["13", "Kinase", "enzyme"]).unwrap();
        let scan: Vec<_> = r
            .select_eq(2, &Value::str("gpcr"))
            .into_iter()
            .cloned()
            .collect();
        r.build_index(2).unwrap();
        let indexed: Vec<_> = r
            .select_eq(2, &Value::str("gpcr"))
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(scan, indexed);
        assert_eq!(scan.len(), 2);
    }

    #[test]
    fn index_maintained_by_later_inserts() {
        let mut r = family();
        r.build_index(2).unwrap();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap();
        assert_eq!(r.probe(2, &Value::str("gpcr")).unwrap().len(), 1);
        assert_eq!(r.probe(2, &Value::str("nope")).unwrap().len(), 0);
    }

    #[test]
    fn build_index_out_of_range() {
        let mut r = family();
        assert!(r.build_index(9).is_err());
    }

    #[test]
    fn remove_preserves_row_order_and_indexes() {
        let mut r = family();
        r.build_index(2).unwrap();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap();
        r.insert(tuple!["12", "Orexin", "gpcr"]).unwrap();
        r.insert(tuple!["13", "Kinase", "enzyme"]).unwrap();
        assert!(r.remove(&tuple!["11", "Calcitonin", "gpcr"]).unwrap());
        // order preserved, positions shifted
        assert_eq!(
            r.rows(),
            &[
                tuple!["12", "Orexin", "gpcr"],
                tuple!["13", "Kinase", "enzyme"]
            ]
        );
        assert_eq!(r.get_by_key(&tuple!["11"]), None);
        assert_eq!(
            r.get_by_key(&tuple!["12"]),
            Some(&tuple!["12", "Orexin", "gpcr"])
        );
        assert_eq!(r.probe(2, &Value::str("gpcr")).unwrap(), &[0]);
        assert_eq!(r.probe(2, &Value::str("enzyme")).unwrap(), &[1]);
        // the key can be reused after removal
        r.insert(tuple!["11", "Calcitonin-2", "gpcr"]).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut r = family();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap();
        assert!(!r.remove(&tuple!["11", "Other", "gpcr"]).unwrap());
        assert_eq!(r.len(), 1);
        // shape is still checked
        assert!(r.remove(&tuple!["11"]).is_err());
    }

    #[test]
    fn recording_captures_effective_ops_only() {
        use crate::delta::DeltaOp;
        let mut r = family();
        r.insert(tuple!["10", "Pre", "gpcr"]).unwrap();
        r.start_recording();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap();
        r.insert(tuple!["11", "Calcitonin", "gpcr"]).unwrap(); // duplicate: no-op
        r.remove(&tuple!["99", "Absent", "gpcr"]).unwrap(); // absent: no-op
        r.remove(&tuple!["10", "Pre", "gpcr"]).unwrap();
        let log = r.take_log().unwrap();
        assert_eq!(
            log.ops,
            vec![
                DeltaOp::Insert(tuple!["11", "Calcitonin", "gpcr"]),
                DeltaOp::Remove(tuple!["10", "Pre", "gpcr"]),
            ]
        );
        assert!(!log.structural);
        assert!(r.take_log().is_none());
    }

    #[test]
    fn index_build_while_recording_is_structural() {
        let mut r = family();
        r.start_recording();
        r.build_index(1).unwrap();
        assert!(r.take_log().unwrap().structural);
        // re-building an existing index is not structural
        let mut r2 = family();
        r2.build_index(1).unwrap();
        r2.start_recording();
        r2.build_index(1).unwrap();
        assert!(!r2.take_log().unwrap().structural);
    }
}
