//! Relation schemas and the database catalog.
//!
//! The paper's GtoPdb schema (Example 2.1) drives the feature set:
//! named attributes, typed columns, primary keys (underlined in the
//! paper) and foreign keys (`FC.FID references Family`, ...).

use crate::error::{RelationError, Result};
use crate::value::DataType;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A single column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
}

impl Attribute {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }
}

/// A foreign-key constraint: `columns` of this relation reference the
/// primary key of `references`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column positions (in this relation).
    pub columns: Vec<usize>,
    /// Name of the referenced relation (whose primary key is targeted).
    pub references: String,
}

/// Schema of one relation: name, attributes, optional primary key,
/// and foreign keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name, unique within the catalog.
    pub name: String,
    /// Ordered attribute list.
    pub attributes: Vec<Attribute>,
    /// Positions of the primary-key columns (empty = no declared key).
    pub key: Vec<usize>,
    /// Foreign-key constraints.
    pub foreign_keys: Vec<ForeignKey>,
}

impl RelationSchema {
    /// Build a schema. Attribute names must be unique; key positions
    /// must be in range and duplicate-free.
    pub fn new(
        name: impl Into<String>,
        attributes: Vec<Attribute>,
        key: Vec<usize>,
    ) -> Result<Self> {
        let name = name.into();
        let mut seen = HashMap::new();
        for (i, attr) in attributes.iter().enumerate() {
            if let Some(prev) = seen.insert(attr.name.clone(), i) {
                return Err(RelationError::InvalidSchema(format!(
                    "attribute `{}` declared twice in `{name}` (positions {prev} and {i})",
                    attr.name
                )));
            }
        }
        let mut key_seen = vec![false; attributes.len()];
        for &k in &key {
            if k >= attributes.len() {
                return Err(RelationError::InvalidSchema(format!(
                    "key position {k} out of range for `{name}` (arity {})",
                    attributes.len()
                )));
            }
            if key_seen[k] {
                return Err(RelationError::InvalidSchema(format!(
                    "key position {k} repeated in `{name}`"
                )));
            }
            key_seen[k] = true;
        }
        Ok(RelationSchema {
            name,
            attributes,
            key,
            foreign_keys: Vec::new(),
        })
    }

    /// Convenience builder: all columns typed, key given by attribute
    /// names. `specs` is `(name, type)`, `key_names` must appear in it.
    pub fn with_names(
        name: impl Into<String>,
        specs: &[(&str, DataType)],
        key_names: &[&str],
    ) -> Result<Self> {
        let attributes = specs
            .iter()
            .map(|(n, t)| Attribute::new(*n, *t))
            .collect::<Vec<_>>();
        let name = name.into();
        let mut key = Vec::with_capacity(key_names.len());
        for k in key_names {
            let pos = attributes
                .iter()
                .position(|a| a.name == *k)
                .ok_or_else(|| RelationError::UnknownAttribute {
                    relation: name.clone(),
                    attribute: (*k).to_string(),
                })?;
            key.push(pos);
        }
        RelationSchema::new(name, attributes, key)
    }

    /// Add a foreign key by attribute names. Validation of the target
    /// key's arity happens when the schema is registered in a catalog.
    pub fn add_foreign_key(&mut self, columns: &[&str], references: &str) -> Result<()> {
        let mut positions = Vec::with_capacity(columns.len());
        for c in columns {
            positions.push(self.position(c)?);
        }
        self.foreign_keys.push(ForeignKey {
            columns: positions,
            references: references.to_string(),
        });
        Ok(())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of an attribute by name.
    pub fn position(&self, attribute: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == attribute)
            .ok_or_else(|| RelationError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: attribute.to_string(),
            })
    }

    /// Attribute names in order.
    pub fn attribute_names(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|a| a.name.as_str())
    }

    /// Whether the relation declares a primary key.
    pub fn has_key(&self) -> bool {
        !self.key.is_empty()
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            if self.key.contains(&i) {
                write!(f, "_{}_: {}", a.name, a.ty)?;
            } else {
                write!(f, "{}: {}", a.name, a.ty)?;
            }
        }
        f.write_str(")")
    }
}

/// The catalog: an immutable map from relation name to schema.
///
/// Schemas are `Arc`-shared between the catalog, relations, versions,
/// and query plans.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    schemas: HashMap<String, Arc<RelationSchema>>,
    /// Insertion order, so iteration and dumps are deterministic.
    order: Vec<String>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a schema. Rejects duplicates and validates foreign-key
    /// targets that are already present (targets registered later are
    /// validated by [`Catalog::validate`]).
    pub fn add(&mut self, schema: RelationSchema) -> Result<Arc<RelationSchema>> {
        if self.schemas.contains_key(&schema.name) {
            return Err(RelationError::DuplicateRelation(schema.name));
        }
        let arc = Arc::new(schema);
        self.order.push(arc.name.clone());
        self.schemas.insert(arc.name.clone(), Arc::clone(&arc));
        Ok(arc)
    }

    /// Replace a registered schema with a modified one of the same
    /// name (e.g. to add foreign keys after creation). The attribute
    /// list and key must be unchanged.
    pub fn replace(&mut self, schema: RelationSchema) -> Result<Arc<RelationSchema>> {
        let existing = self.get(&schema.name)?;
        if existing.attributes != schema.attributes || existing.key != schema.key {
            return Err(RelationError::InvalidSchema(format!(
                "replace of `{}` may only change constraints, not shape",
                schema.name
            )));
        }
        let arc = Arc::new(schema);
        self.schemas.insert(arc.name.clone(), Arc::clone(&arc));
        Ok(arc)
    }

    /// Look up a schema by name.
    pub fn get(&self, name: &str) -> Result<&Arc<RelationSchema>> {
        self.schemas
            .get(name)
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))
    }

    /// Whether a relation is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.schemas.contains_key(name)
    }

    /// Schemas in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<RelationSchema>> {
        self.order.iter().map(|n| &self.schemas[n])
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Check that every foreign key references an existing relation
    /// with a declared primary key of matching arity.
    pub fn validate(&self) -> Result<()> {
        for schema in self.iter() {
            for fk in &schema.foreign_keys {
                let target = self.get(&fk.references)?;
                if !target.has_key() {
                    return Err(RelationError::InvalidSchema(format!(
                        "`{}` references `{}` which has no primary key",
                        schema.name, fk.references
                    )));
                }
                if target.key.len() != fk.columns.len() {
                    return Err(RelationError::InvalidSchema(format!(
                        "`{}` references `{}` with {} columns but its key has {}",
                        schema.name,
                        fk.references,
                        fk.columns.len(),
                        target.key.len()
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family_schema() -> RelationSchema {
        RelationSchema::with_names(
            "Family",
            &[
                ("FID", DataType::Str),
                ("FName", DataType::Str),
                ("Type", DataType::Str),
            ],
            &["FID"],
        )
        .unwrap()
    }

    #[test]
    fn with_names_resolves_key_positions() {
        let s = family_schema();
        assert_eq!(s.key, vec![0]);
        assert_eq!(s.arity(), 3);
        assert!(s.has_key());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err =
            RelationSchema::with_names("R", &[("a", DataType::Int), ("a", DataType::Str)], &[])
                .unwrap_err();
        assert!(matches!(err, RelationError::InvalidSchema(_)));
    }

    #[test]
    fn key_position_out_of_range_rejected() {
        let err = RelationSchema::new("R", vec![Attribute::new("a", DataType::Int)], vec![3])
            .unwrap_err();
        assert!(matches!(err, RelationError::InvalidSchema(_)));
    }

    #[test]
    fn unknown_key_name_rejected() {
        let err = RelationSchema::with_names("R", &[("a", DataType::Int)], &["nope"]).unwrap_err();
        assert!(matches!(err, RelationError::UnknownAttribute { .. }));
    }

    #[test]
    fn catalog_rejects_duplicates() {
        let mut cat = Catalog::new();
        cat.add(family_schema()).unwrap();
        let err = cat.add(family_schema()).unwrap_err();
        assert!(matches!(err, RelationError::DuplicateRelation(_)));
    }

    #[test]
    fn catalog_validates_fk_targets() {
        let mut cat = Catalog::new();
        cat.add(family_schema()).unwrap();
        let mut fc = RelationSchema::with_names(
            "FC",
            &[("FID", DataType::Str), ("PID", DataType::Str)],
            &["FID", "PID"],
        )
        .unwrap();
        fc.add_foreign_key(&["FID"], "Family").unwrap();
        cat.add(fc).unwrap();
        cat.validate().unwrap();
    }

    #[test]
    fn catalog_validate_rejects_missing_target() {
        let mut cat = Catalog::new();
        let mut fc = RelationSchema::with_names("FC", &[("FID", DataType::Str)], &[]).unwrap();
        fc.add_foreign_key(&["FID"], "Family").unwrap();
        cat.add(fc).unwrap();
        assert!(matches!(
            cat.validate().unwrap_err(),
            RelationError::UnknownRelation(_)
        ));
    }

    #[test]
    fn catalog_validate_rejects_arity_mismatch() {
        let mut cat = Catalog::new();
        cat.add(family_schema()).unwrap();
        let mut r =
            RelationSchema::with_names("R", &[("a", DataType::Str), ("b", DataType::Str)], &[])
                .unwrap();
        r.add_foreign_key(&["a", "b"], "Family").unwrap();
        cat.add(r).unwrap();
        assert!(matches!(
            cat.validate().unwrap_err(),
            RelationError::InvalidSchema(_)
        ));
    }

    #[test]
    fn display_marks_key_columns() {
        let s = family_schema();
        let shown = s.to_string();
        assert!(shown.contains("_FID_"), "{shown}");
        assert!(shown.contains("FName: str"), "{shown}");
    }

    #[test]
    fn iteration_is_in_registration_order() {
        let mut cat = Catalog::new();
        cat.add(RelationSchema::with_names("B", &[("x", DataType::Int)], &[]).unwrap())
            .unwrap();
        cat.add(RelationSchema::with_names("A", &[("x", DataType::Int)], &[]).unwrap())
            .unwrap();
        let names: Vec<_> = cat.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["B", "A"]);
    }
}
