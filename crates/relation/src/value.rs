//! Atomic values stored in relations.
//!
//! The paper's model is typed only loosely (identifiers, names, free
//! text, version numbers). We support the four scalar types needed by
//! the GtoPdb schema and general workloads: strings, 64-bit integers,
//! 64-bit floats, and booleans, plus SQL-style `NULL`.
//!
//! `Value` implements total `Eq`/`Ord`/`Hash` so it can key hash and
//! tree indexes; floats are compared by their IEEE total order with
//! `-0.0` normalized to `0.0` and all NaNs collapsed to one canonical
//! NaN.

use std::borrow::Cow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// UTF-8 string.
    Str,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Boolean.
    Bool,
    /// Any type accepted (used by loosely-typed scratch relations).
    Any,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Str => "str",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Bool => "bool",
            DataType::Any => "any",
        };
        f.write_str(s)
    }
}

/// An atomic relational value.
///
/// Strings are reference-counted (`Arc<str>`) because the citation
/// pipeline copies values freely between tuples, bindings, citation
/// atoms, and JSON output; cloning must stay cheap.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style null. Compares equal to itself (so it can live in
    /// indexes); query semantics never produce joins on null because
    /// the evaluator skips null bindings for equality predicates.
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float, canonicalized (see module docs).
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
}

impl Value {
    /// A string value. Accepts anything convertible into an `Arc<str>`.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Heap bytes behind this value (string payload; scalars are 0).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Value::Str(s) => s.len(),
            _ => 0,
        }
    }

    /// An integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// A float value (canonicalized).
    pub fn float(f: f64) -> Self {
        Value::Float(canonical_f64(f))
    }

    /// Runtime type of the value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Any,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Whether the value conforms to the declared column type.
    /// `Null` conforms to every type; every value conforms to `Any`.
    pub fn conforms_to(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (_, DataType::Any)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Int(_), DataType::Int)
                | (Value::Float(_), DataType::Float)
                | (Value::Str(_), DataType::Str)
        )
    }

    /// Is this the null value?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// View a string value as `&str`, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View an integer value, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Render the value the way the loader parses it (round-trips).
    pub fn render(&self) -> Cow<'static, str> {
        match self {
            Value::Null => Cow::Borrowed("NULL"),
            Value::Bool(b) => Cow::Borrowed(if *b { "true" } else { "false" }),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Float(x) => Cow::Owned(format!("{x:?}")),
            Value::Str(s) => Cow::Owned(format!("{s:?}")),
        }
    }

    /// Parse a value from loader syntax: `NULL`, `true`/`false`,
    /// integers, floats (must contain `.`, `e`, `inf` or `NaN`), and
    /// double-quoted strings with `\"`/`\\` escapes. Bare words are
    /// accepted as strings for convenience.
    pub fn parse(text: &str) -> Option<Value> {
        let t = text.trim();
        if t.is_empty() {
            return None;
        }
        if t == "NULL" {
            return Some(Value::Null);
        }
        if t == "true" {
            return Some(Value::Bool(true));
        }
        if t == "false" {
            return Some(Value::Bool(false));
        }
        if let Ok(i) = t.parse::<i64>() {
            return Some(Value::Int(i));
        }
        if t.contains(['.', 'e', 'E']) || t.contains("inf") || t.contains("NaN") {
            if let Ok(f) = t.parse::<f64>() {
                return Some(Value::float(f));
            }
        }
        if t.starts_with('"') {
            return parse_quoted(t).map(Value::Str);
        }
        Some(Value::str(t))
    }
}

fn parse_quoted(t: &str) -> Option<Arc<str>> {
    let inner = t.strip_prefix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    loop {
        match chars.next()? {
            '"' => {
                // must be the end of input
                return if chars.next().is_none() {
                    Some(Arc::from(out.as_str()))
                } else {
                    None
                };
            }
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            },
            c => out.push(c),
        }
    }
}

/// Canonicalize a float for total ordering: `-0.0 -> 0.0`, every NaN
/// becomes the canonical positive quiet NaN.
fn canonical_f64(f: f64) -> f64 {
    if f.is_nan() {
        f64::NAN
    } else if f == 0.0 {
        0.0
    } else {
        f
    }
}

/// Rank used to order values of different types: Null < Bool < Int ~
/// Float < Str. Ints and floats compare numerically against each other.
fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 2,
        Value::Str(_) => 3,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Float(a), Float(b)) => canonical_f64(*a).total_cmp(&canonical_f64(*b)),
            (Int(a), Float(b)) => (*a as f64).total_cmp(&canonical_f64(*b)),
            (Float(a), Int(b)) => canonical_f64(*a).total_cmp(&(*b as f64)),
            _ => type_rank(self).cmp(&type_rank(other)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and whole-valued floats must hash identically since
            // they compare equal (Int(2) == Float(2.0)).
            Value::Int(i) => {
                2u8.hash(state);
                canonical_f64(*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                canonical_f64(*f).to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn string_values_compare_lexicographically() {
        assert!(Value::str("abc") < Value::str("abd"));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn numeric_equality_implies_equal_hash() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn negative_zero_is_zero() {
        assert_eq!(Value::float(-0.0), Value::float(0.0));
        assert_eq!(hash_of(&Value::float(-0.0)), hash_of(&Value::float(0.0)));
    }

    #[test]
    fn nan_is_self_equal_after_canonicalization() {
        let a = Value::float(f64::NAN);
        let b = Value::float(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn cross_type_ordering_is_total() {
        let mut vals = [
            Value::str("a"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::float(0.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[4], Value::str("a"));
    }

    #[test]
    fn parse_round_trips_render() {
        let samples = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::float(2.5),
            Value::str("hello \"world\"\\"),
            Value::str(""),
        ];
        for v in samples {
            let rendered = v.render();
            let back = Value::parse(&rendered).unwrap_or_else(|| panic!("parse {rendered}"));
            assert_eq!(back, v, "round trip failed for {rendered}");
        }
    }

    #[test]
    fn parse_bare_word_is_string() {
        assert_eq!(Value::parse("gpcr"), Some(Value::str("gpcr")));
    }

    #[test]
    fn parse_rejects_unterminated_string() {
        assert_eq!(Value::parse("\"abc"), None);
        assert_eq!(Value::parse("\"abc\"x"), None);
    }

    #[test]
    fn conformance_rules() {
        assert!(Value::Null.conforms_to(DataType::Int));
        assert!(Value::Int(1).conforms_to(DataType::Any));
        assert!(Value::Int(1).conforms_to(DataType::Int));
        assert!(!Value::Int(1).conforms_to(DataType::Str));
    }

    #[test]
    fn display_is_unquoted() {
        assert_eq!(Value::str("gpcr").to_string(), "gpcr");
        assert_eq!(Value::Int(11).to_string(), "11");
    }
}
