//! Citation functions `F_V` — "the citation function which transforms
//! the output of the citation query into a citation in some desired
//! format, such as JSON or XML" (Definition 2.1).
//!
//! The paper leaves `F_V` a black box and calls for "designing a
//! language for the specification of the black boxes, allowing for
//! their analysis" (§4). [`CitationFunction`] is that small language:
//! a declarative mapping from citation-query output columns to a JSON
//! structure, with scalar fields, collected arrays, and nested
//! grouping (needed for V4/V5-style citations, which group committee
//! members per family). An escape hatch admits arbitrary closures.

use crate::json::Json;
use fgc_relation::Tuple;
use std::fmt;
use std::sync::Arc;

/// One field of the output citation object.
#[derive(Debug, Clone)]
pub enum FieldSpec {
    /// A scalar field taken from a column of the *first* row
    /// (well-defined when the column is functionally determined by
    /// the citation query's parameters, as in all paper examples).
    Scalar {
        /// JSON field label.
        label: String,
        /// Column index into the citation-query output.
        column: usize,
    },
    /// An array collecting the distinct values of a column across
    /// all rows, in first-appearance order (e.g. `Committee:
    /// ["Hay", "Poyner"]`).
    Collect {
        /// JSON field label.
        label: String,
        /// Column index into the citation-query output.
        column: usize,
    },
    /// A constant field (e.g. a fixed database name).
    Constant {
        /// JSON field label.
        label: String,
        /// The value.
        value: Json,
    },
    /// An array of sub-objects, one per distinct value combination of
    /// the key columns, each built from `fields` evaluated on the
    /// rows of that group (e.g. V4's `Contributors: [{Name, Committee:
    /// [...]}, ...]`).
    Group {
        /// JSON field label for the array.
        label: String,
        /// Key columns defining the groups.
        key: Vec<usize>,
        /// Fields of each group object.
        fields: Vec<FieldSpec>,
    },
}

impl FieldSpec {
    /// Largest column index referenced (for arity validation).
    fn max_column(&self) -> Option<usize> {
        match self {
            FieldSpec::Scalar { column, .. } | FieldSpec::Collect { column, .. } => Some(*column),
            FieldSpec::Constant { .. } => None,
            FieldSpec::Group { key, fields, .. } => key
                .iter()
                .copied()
                .chain(fields.iter().filter_map(FieldSpec::max_column))
                .max(),
        }
    }

    fn apply(&self, rows: &[&Tuple]) -> (String, Json) {
        match self {
            FieldSpec::Scalar { label, column } => {
                let v = rows
                    .first()
                    .map(|r| Json::from(r[*column].clone()))
                    .unwrap_or(Json::Null);
                (label.clone(), v)
            }
            FieldSpec::Collect { label, column } => {
                let mut items: Vec<Json> = Vec::new();
                for r in rows {
                    let v = Json::from(r[*column].clone());
                    if !items.contains(&v) {
                        items.push(v);
                    }
                }
                (label.clone(), Json::Array(items))
            }
            FieldSpec::Constant { label, value } => (label.clone(), value.clone()),
            FieldSpec::Group { label, key, fields } => {
                // group rows by key projection, preserving order
                let mut groups: Vec<(Vec<fgc_relation::Value>, Vec<&Tuple>)> = Vec::new();
                for r in rows {
                    let k: Vec<fgc_relation::Value> = key.iter().map(|&c| r[c].clone()).collect();
                    match groups.iter_mut().find(|(gk, _)| gk == &k) {
                        Some((_, members)) => members.push(r),
                        None => groups.push((k, vec![r])),
                    }
                }
                let items = groups
                    .into_iter()
                    .map(|(_, members)| {
                        Json::Object(fields.iter().map(|f| f.apply(&members)).collect())
                    })
                    .collect();
                (label.clone(), Json::Array(items))
            }
        }
    }
}

/// Boxed custom transformation.
type CustomFn = Arc<dyn Fn(&[Tuple]) -> Json + Send + Sync>;

/// The body of a citation function.
#[derive(Clone)]
enum Body {
    /// Declarative field mapping.
    Spec(Vec<FieldSpec>),
    /// Arbitrary transformation.
    Custom(CustomFn),
}

/// A citation function `F_V`.
#[derive(Clone)]
pub struct CitationFunction {
    body: Body,
}

impl CitationFunction {
    /// A declarative citation function from field specs.
    pub fn from_spec(fields: Vec<FieldSpec>) -> Self {
        CitationFunction {
            body: Body::Spec(fields),
        }
    }

    /// An arbitrary (closure-backed) citation function.
    pub fn custom<F>(f: F) -> Self
    where
        F: Fn(&[Tuple]) -> Json + Send + Sync + 'static,
    {
        CitationFunction {
            body: Body::Custom(Arc::new(f)),
        }
    }

    /// Apply the function to citation-query output rows.
    ///
    /// An empty row set yields `Json::Null` — "no citation
    /// information for this valuation"; policy-level neutral
    /// citations (Def. 3.4) are added by the engine.
    pub fn apply(&self, rows: &[Tuple]) -> Json {
        match &self.body {
            Body::Spec(fields) => {
                if rows.is_empty() {
                    return Json::Null;
                }
                let refs: Vec<&Tuple> = rows.iter().collect();
                Json::Object(fields.iter().map(|f| f.apply(&refs)).collect())
            }
            Body::Custom(f) => f(rows),
        }
    }

    /// Largest column index referenced by a declarative spec
    /// (`None` for custom functions, which cannot be validated).
    pub fn max_column(&self) -> Option<usize> {
        match &self.body {
            Body::Spec(fields) => fields.iter().filter_map(FieldSpec::max_column).max(),
            Body::Custom(_) => None,
        }
    }

    /// Is this a declarative (analyzable) function?
    pub fn is_declarative(&self) -> bool {
        matches!(self.body, Body::Spec(_))
    }
}

impl fmt::Debug for CitationFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            Body::Spec(fields) => f.debug_tuple("CitationFunction").field(fields).finish(),
            Body::Custom(_) => f.write_str("CitationFunction(<custom>)"),
        }
    }
}

/// Builder shorthands used all over the GtoPdb setup.
impl CitationFunction {
    /// `Scalar` field shorthand.
    pub fn scalar(label: impl Into<String>, column: usize) -> FieldSpec {
        FieldSpec::Scalar {
            label: label.into(),
            column,
        }
    }

    /// `Collect` field shorthand.
    pub fn collect(label: impl Into<String>, column: usize) -> FieldSpec {
        FieldSpec::Collect {
            label: label.into(),
            column,
        }
    }

    /// `Constant` field shorthand.
    pub fn constant(label: impl Into<String>, value: Json) -> FieldSpec {
        FieldSpec::Constant {
            label: label.into(),
            value,
        }
    }

    /// `Group` field shorthand.
    pub fn group(label: impl Into<String>, key: Vec<usize>, fields: Vec<FieldSpec>) -> FieldSpec {
        FieldSpec::Group {
            label: label.into(),
            key,
            fields,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgc_relation::tuple;

    #[test]
    fn fv1_formats_family_citation() {
        // CV1 output: (F, N, Pn) rows, one per committee member
        let rows = vec![
            tuple!["11", "Calcitonin", "Hay"],
            tuple!["11", "Calcitonin", "Poyner"],
        ];
        let fv1 = CitationFunction::from_spec(vec![
            CitationFunction::scalar("ID", 0),
            CitationFunction::scalar("Name", 1),
            CitationFunction::collect("Committee", 2),
        ]);
        let citation = fv1.apply(&rows);
        assert_eq!(
            citation.to_compact(),
            r#"{"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}"#
        );
    }

    #[test]
    fn fv4_groups_families_by_name() {
        // CV4 output: (Ty, N, Pn)
        let rows = vec![
            tuple!["gpcr", "Calcitonin", "Hay"],
            tuple!["gpcr", "Calcitonin", "Poyner"],
            tuple!["gpcr", "Calcium-sensing", "Bilke"],
            tuple!["gpcr", "Calcium-sensing", "Conigrave"],
            tuple!["gpcr", "Calcium-sensing", "Shoback"],
        ];
        let fv4 = CitationFunction::from_spec(vec![
            CitationFunction::scalar("Type", 0),
            CitationFunction::group(
                "Contributors",
                vec![1],
                vec![
                    CitationFunction::scalar("Name", 1),
                    CitationFunction::collect("Committee", 2),
                ],
            ),
        ]);
        let citation = fv4.apply(&rows);
        assert_eq!(
            citation.to_compact(),
            r#"{"Type": "gpcr", "Contributors": [{"Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}, {"Name": "Calcium-sensing", "Committee": ["Bilke", "Conigrave", "Shoback"]}]}"#
        );
    }

    #[test]
    fn collect_deduplicates() {
        let rows = vec![tuple!["a", "X"], tuple!["a", "X"], tuple!["a", "Y"]];
        let f = CitationFunction::from_spec(vec![CitationFunction::collect("Vals", 1)]);
        assert_eq!(
            f.apply(&rows).get("Vals"),
            Some(&Json::Array(vec![Json::str("X"), Json::str("Y")]))
        );
    }

    #[test]
    fn empty_rows_yield_null() {
        let f = CitationFunction::from_spec(vec![CitationFunction::scalar("ID", 0)]);
        assert!(f.apply(&[]).is_null());
    }

    #[test]
    fn constant_fields() {
        let rows = vec![tuple!["x"]];
        let f = CitationFunction::from_spec(vec![
            CitationFunction::constant("Database", Json::str("GtoPdb")),
            CitationFunction::scalar("Key", 0),
        ]);
        assert_eq!(f.apply(&rows).get("Database"), Some(&Json::str("GtoPdb")));
    }

    #[test]
    fn custom_function() {
        let f = CitationFunction::custom(|rows| Json::Int(rows.len() as i64));
        assert_eq!(f.apply(&[tuple![1], tuple![2]]), Json::Int(2));
        assert!(!f.is_declarative());
        assert!(f.max_column().is_none());
    }

    #[test]
    fn max_column_covers_nested_groups() {
        let f = CitationFunction::from_spec(vec![CitationFunction::group(
            "G",
            vec![1],
            vec![CitationFunction::collect("C", 4)],
        )]);
        assert_eq!(f.max_column(), Some(4));
        assert!(f.is_declarative());
    }

    #[test]
    fn debug_formats() {
        let f = CitationFunction::from_spec(vec![CitationFunction::scalar("ID", 0)]);
        assert!(format!("{f:?}").contains("Scalar"));
        let c = CitationFunction::custom(|_| Json::Null);
        assert!(format!("{c:?}").contains("custom"));
    }
}
