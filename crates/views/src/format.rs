//! Citation output formats beyond JSON.
//!
//! Definition 2.1: the citation function transforms the citation
//! query's output "into a citation in some desired format, **such as
//! JSON or XML**". JSON is the engine's native value ([`crate::json`]);
//! this module renders the same values as XML and as human-readable
//! citation text (the string a repository would display under
//! "Cite this result").

use crate::json::Json;
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// XML
// ---------------------------------------------------------------------

/// Render a citation as XML. Objects become elements (field name =
/// tag), arrays repeat an `<item>` element, scalars become text.
/// Tag names are sanitized to XML NCName-safe ASCII.
pub fn to_xml(citation: &Json, root: &str) -> String {
    let mut out = String::new();
    write_xml(citation, &sanitize_tag(root), &mut out, 0);
    out
}

fn sanitize_tag(raw: &str) -> String {
    let mut tag: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if tag.is_empty() || tag.starts_with(|c: char| c.is_ascii_digit() || c == '-') {
        tag.insert(0, '_');
    }
    tag
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_xml(j: &Json, tag: &str, out: &mut String, depth: usize) {
    indent(out, depth);
    match j {
        Json::Null => {
            let _ = writeln!(out, "<{tag}/>");
        }
        Json::Bool(b) => {
            let _ = writeln!(out, "<{tag}>{b}</{tag}>");
        }
        Json::Int(i) => {
            let _ = writeln!(out, "<{tag}>{i}</{tag}>");
        }
        Json::Float(x) => {
            let _ = writeln!(out, "<{tag}>{x:?}</{tag}>");
        }
        Json::Str(s) => {
            let _ = writeln!(out, "<{tag}>{}</{tag}>", escape_xml(s));
        }
        Json::Array(items) => {
            let _ = writeln!(out, "<{tag}>");
            for item in items {
                write_xml(item, "item", out, depth + 1);
            }
            indent(out, depth);
            let _ = writeln!(out, "</{tag}>");
        }
        Json::Object(fields) => {
            let _ = writeln!(out, "<{tag}>");
            for (k, v) in fields {
                write_xml(v, &sanitize_tag(k), out, depth + 1);
            }
            indent(out, depth);
            let _ = writeln!(out, "</{tag}>");
        }
    }
}

fn escape_xml(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Human-readable citation text
// ---------------------------------------------------------------------

/// A text citation style: which fields name the *creators*, which
/// field titles the cited unit, and static snippets around them.
/// Mirrors how repositories render "how to cite this page".
#[derive(Debug, Clone)]
pub struct TextStyle {
    /// Fields (in priority order) holding person lists to credit.
    pub creator_fields: Vec<String>,
    /// Fields (in priority order) holding the cited unit's title.
    pub title_fields: Vec<String>,
    /// Fields appended verbatim as `key: value` trailers (e.g.
    /// `URL`, `Version`).
    pub trailer_fields: Vec<String>,
    /// Repository name appended to every citation.
    pub repository: String,
}

impl Default for TextStyle {
    fn default() -> Self {
        TextStyle {
            creator_fields: vec![
                "Committee".into(),
                "Contributors".into(),
                "Curators".into(),
                "Owner".into(),
            ],
            title_fields: vec!["Name".into(), "Type".into(), "Title".into()],
            trailer_fields: vec!["URL".into(), "Version".into(), "Timestamp".into()],
            repository: String::new(),
        }
    }
}

impl TextStyle {
    /// Style with a repository name.
    pub fn for_repository(name: impl Into<String>) -> Self {
        TextStyle {
            repository: name.into(),
            ..TextStyle::default()
        }
    }
}

/// Render a citation value as one or more lines of citation text.
/// Arrays of records produce one line each; single records produce
/// one line of `creators. title. trailers. repository`.
pub fn to_text(citation: &Json, style: &TextStyle) -> String {
    let mut lines = Vec::new();
    collect_lines(citation, style, &mut lines);
    if lines.is_empty() {
        let fallback = if style.repository.is_empty() {
            "(no citation information)".to_string()
        } else {
            format!("(no citation information). {}.", style.repository)
        };
        lines.push(fallback);
    }
    lines.join("\n")
}

fn collect_lines(j: &Json, style: &TextStyle, lines: &mut Vec<String>) {
    match j {
        Json::Array(items) => {
            for item in items {
                collect_lines(item, style, lines);
            }
        }
        Json::Object(_) => {
            if let Some(line) = record_line(j, style) {
                lines.push(line);
            }
        }
        Json::Null => {}
        other => lines.push(other.to_compact()),
    }
}

fn names_of(j: &Json) -> Vec<String> {
    match j {
        Json::Str(s) => vec![s.clone()],
        Json::Array(items) => items.iter().flat_map(names_of).collect(),
        Json::Object(_) => {
            // nested contributor group: prefer its Name field
            j.get("Name").map(names_of).unwrap_or_default()
        }
        _ => Vec::new(),
    }
}

fn record_line(record: &Json, style: &TextStyle) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    for f in &style.creator_fields {
        if let Some(v) = record.get(f) {
            let names = names_of(v);
            if !names.is_empty() {
                parts.push(format!("{} ({})", names.join(", "), f.to_lowercase()));
                break;
            }
        }
    }
    for f in &style.title_fields {
        if let Some(Json::Str(title)) = record.get(f) {
            parts.push(title.clone());
            break;
        }
    }
    // nested contributor groups (V4/V5-style citations)
    if let Some(Json::Array(groups)) = record.get("Contributors") {
        let mut group_parts = Vec::new();
        for g in groups {
            if let (Some(Json::Str(name)), Some(members)) = (g.get("Name"), g.get("Committee")) {
                let members = names_of(members);
                if !members.is_empty() {
                    group_parts.push(format!("{name} [{}]", members.join(", ")));
                }
            }
        }
        if !group_parts.is_empty() {
            parts.push(group_parts.join("; "));
        }
    }
    for f in &style.trailer_fields {
        if let Some(v) = record.get(f) {
            match v {
                Json::Str(s) => parts.push(format!("{f}: {s}")),
                Json::Int(i) => parts.push(format!("{f}: {i}")),
                _ => {}
            }
        }
    }
    if !style.repository.is_empty() {
        parts.push(style.repository.clone());
    }
    if parts.is_empty() {
        None
    } else {
        Some(format!("{}.", parts.join(". ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calcitonin() -> Json {
        Json::from_pairs([
            ("ID", Json::str("11")),
            ("Name", Json::str("Calcitonin")),
            (
                "Committee",
                Json::Array(vec![Json::str("Hay"), Json::str("Poyner")]),
            ),
        ])
    }

    #[test]
    fn xml_renders_objects_and_arrays() {
        let xml = to_xml(&calcitonin(), "citation");
        assert!(xml.contains("<citation>"));
        assert!(xml.contains("<ID>11</ID>"));
        assert!(xml.contains("<Committee>"));
        assert!(xml.contains("<item>Hay</item>"));
        assert!(xml.ends_with("</citation>\n"));
    }

    #[test]
    fn xml_escapes_special_characters() {
        let j = Json::from_pairs([("Text", Json::str("a < b & \"c\""))]);
        let xml = to_xml(&j, "c");
        assert!(xml.contains("a &lt; b &amp; &quot;c&quot;"));
    }

    #[test]
    fn xml_sanitizes_tags() {
        let j = Json::from_pairs([("weird field!", Json::Int(1))]);
        let xml = to_xml(&j, "9root");
        assert!(xml.contains("<weird_field_>1</weird_field_>"));
        assert!(xml.contains("<_9root>"));
    }

    #[test]
    fn xml_null_is_self_closing() {
        assert_eq!(to_xml(&Json::Null, "empty"), "<empty/>\n");
    }

    #[test]
    fn text_single_record() {
        let style = TextStyle::for_repository("IUPHAR/BPS Guide to Pharmacology");
        let text = to_text(&calcitonin(), &style);
        assert_eq!(
            text,
            "Hay, Poyner (committee). Calcitonin. IUPHAR/BPS Guide to Pharmacology."
        );
    }

    #[test]
    fn text_record_set_yields_one_line_each() {
        let set = Json::Array(vec![calcitonin(), calcitonin()]);
        let text = to_text(&set, &TextStyle::default());
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn text_grouped_contributors() {
        let v4_citation = Json::from_pairs([
            ("Type", Json::str("gpcr")),
            (
                "Contributors",
                Json::Array(vec![Json::from_pairs([
                    ("Name", Json::str("Calcitonin")),
                    (
                        "Committee",
                        Json::Array(vec![Json::str("Hay"), Json::str("Poyner")]),
                    ),
                ])]),
            ),
        ]);
        let text = to_text(&v4_citation, &TextStyle::default());
        assert!(text.contains("gpcr"));
        assert!(text.contains("Calcitonin [Hay, Poyner]"));
    }

    #[test]
    fn text_trailers_and_fallback() {
        let with_meta = Json::from_pairs([
            ("Owner", Json::str("Tony Harmar")),
            ("URL", Json::str("guidetopharmacology.org")),
        ]);
        let text = to_text(&with_meta, &TextStyle::default());
        assert!(text.contains("Tony Harmar (owner)"));
        assert!(text.contains("URL: guidetopharmacology.org"));
        let empty = to_text(&Json::Null, &TextStyle::for_repository("X"));
        assert!(empty.contains("no citation information"));
    }
}
