//! # fgc-views — citation views: (V, C_V, F_V) triples and JSON
//! citations
//!
//! Implements Definition 2.1 of *"A Model for Fine-Grained Data
//! Citation"* (CIDR 2017) for the `fgcite` workspace:
//!
//! * [`json`] — the citation value type, its serializers, and the
//!   record *union* / *join* combinators the paper offers as natural
//!   interpretations of `·` and `+R` (Example 3.5);
//! * [`function`] — citation functions `F_V` as a small declarative
//!   mapping language (scalar / collect / constant / nested group),
//!   plus a closure escape hatch;
//! * [`view`] — the citation-view triple with validation
//!   (shared parameter lists, `X ⊆ Y`, schema conformance) and
//!   instantiation (`F_V(C_V(Y')(a₁..aₙ))`);
//! * [`registry`] — the owner-declared view set, with extent
//!   materialization for the rewriting engine;
//! * [`mod@format`] — XML and human-readable text renderings of
//!   citations (Def. 2.1 names "JSON or XML" as target formats).

#![warn(missing_docs)]

pub mod format;
pub mod function;
pub mod json;
pub mod registry;
pub mod spec;
pub mod view;

pub use format::{to_text, to_xml, TextStyle};
pub use function::{CitationFunction, FieldSpec};
pub use json::{join_records, union_records, Json};
pub use registry::ViewRegistry;
pub use spec::parse_view_file;
pub use view::{CitationView, Result as ViewResult, ViewError};
