//! The set of citation views declared by a database owner.
//!
//! "Database owners specify a set of citation views, from which the
//! citation for a general query over the database will be
//! constructed" (§2.2).

use crate::view::{CitationView, Result, ViewError};
use fgc_relation::{Catalog, Database, Tuple};
use std::collections::HashMap;
use std::sync::Arc;

/// An ordered, name-indexed collection of citation views.
#[derive(Debug, Clone, Default)]
pub struct ViewRegistry {
    views: Vec<Arc<CitationView>>,
    by_name: HashMap<String, usize>,
}

impl ViewRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ViewRegistry::default()
    }

    /// Add a view. Duplicate names are rejected.
    pub fn add(&mut self, view: CitationView) -> Result<()> {
        if self.by_name.contains_key(&view.name) {
            return Err(ViewError::Query(fgc_query::QueryError::Relation(
                fgc_relation::RelationError::DuplicateRelation(view.name.clone()),
            )));
        }
        self.by_name.insert(view.name.clone(), self.views.len());
        self.views.push(Arc::new(view));
        Ok(())
    }

    /// Look up a view by name.
    pub fn get(&self, name: &str) -> Option<&Arc<CitationView>> {
        self.by_name.get(name).map(|&i| &self.views[i])
    }

    /// All views in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<CitationView>> {
        self.views.iter()
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Validate every view against the catalog.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        for v in &self.views {
            v.validate(catalog)?;
        }
        Ok(())
    }

    /// Materialize the unparameterized extent of every view. The
    /// result maps view name → extent rows; the rewriting engine
    /// evaluates rewritings against these.
    pub fn materialize(&self, db: &Database) -> Result<HashMap<String, Vec<Tuple>>> {
        let mut out = HashMap::with_capacity(self.views.len());
        for v in &self.views {
            out.insert(v.name.clone(), v.extent(db)?);
        }
        Ok(out)
    }
}

impl FromIterator<CitationView> for ViewRegistry {
    fn from_iter<T: IntoIterator<Item = CitationView>>(iter: T) -> Self {
        let mut reg = ViewRegistry::new();
        for v in iter {
            reg.add(v).expect("duplicate view name in FromIterator");
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::CitationFunction;
    use fgc_query::parse_query;
    use fgc_relation::schema::RelationSchema;
    use fgc_relation::{tuple, DataType};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::with_names(
                "Family",
                &[
                    ("FID", DataType::Str),
                    ("FName", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("Family", tuple!["11", "Calcitonin", "gpcr"])
            .unwrap();
        db
    }

    fn view(name: &str) -> CitationView {
        CitationView::new(
            parse_query(&format!("lambda F. {name}(F, N, Ty) :- Family(F, N, Ty)")).unwrap(),
            parse_query(&format!("lambda F. C{name}(F, N) :- Family(F, N, Ty)")).unwrap(),
            CitationFunction::from_spec(vec![CitationFunction::scalar("ID", 0)]),
        )
    }

    #[test]
    fn add_get_iter() {
        let mut reg = ViewRegistry::new();
        reg.add(view("V1")).unwrap();
        reg.add(view("V2")).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.get("V1").is_some());
        assert!(reg.get("V9").is_none());
        let names: Vec<_> = reg.iter().map(|v| v.name.clone()).collect();
        assert_eq!(names, vec!["V1", "V2"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut reg = ViewRegistry::new();
        reg.add(view("V1")).unwrap();
        assert!(reg.add(view("V1")).is_err());
    }

    #[test]
    fn validate_all() {
        let db = db();
        let reg: ViewRegistry = [view("V1"), view("V2")].into_iter().collect();
        reg.validate(db.catalog()).unwrap();
    }

    #[test]
    fn materialize_produces_extents() {
        let db = db();
        let reg: ViewRegistry = [view("V1")].into_iter().collect();
        let mats = reg.materialize(&db).unwrap();
        assert_eq!(mats["V1"], vec![tuple!["11", "Calcitonin", "gpcr"]]);
    }
}
