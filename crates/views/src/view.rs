//! Citation views — Definition 2.1 of the paper:
//!
//! > "A citation view is a triple (V, C_V, F_V) where V is the view
//! > definition of form λX.V(Y) :- Q; C_V is the citation query of
//! > form λX.C_V(Y') :- Q'; and F_V is the citation function which
//! > transforms the output of the citation query into a citation."
//!
//! `V` and `C_V` are parameterized by the *same* X; for every
//! valuation of X, F_V(C_V(Y')(a₁..aₙ)) is the citation of every
//! tuple in V(Y)(a₁..aₙ).

use crate::function::CitationFunction;
use crate::json::Json;
use fgc_query::{check_against_catalog, check_safety, evaluate, ConjunctiveQuery, QueryError};
use fgc_relation::{Database, Tuple, Value};

/// Errors raised by view validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewError {
    /// The view definition and citation query declare different
    /// parameter lists (Def. 2.1 requires the same X).
    ParameterListsDiffer {
        /// View name.
        view: String,
        /// Parameters of V.
        view_params: Vec<String>,
        /// Parameters of C_V.
        citation_params: Vec<String>,
    },
    /// A λ-parameter does not appear in the view head (Def. 2.1
    /// requires X ⊆ Y, which is what lets rewritings treat parameters
    /// as output columns).
    ParameterNotInHead {
        /// View name.
        view: String,
        /// The offending parameter.
        parameter: String,
    },
    /// The citation function references a column beyond the citation
    /// query's head arity.
    FunctionColumnOutOfRange {
        /// View name.
        view: String,
        /// Largest referenced column.
        column: usize,
        /// Citation-query head arity.
        arity: usize,
    },
    /// An underlying query error (safety, schema, evaluation).
    Query(QueryError),
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::ParameterListsDiffer {
                view,
                view_params,
                citation_params,
            } => write!(
                f,
                "view `{view}`: V is parameterized by [{}] but C_V by [{}]",
                view_params.join(", "),
                citation_params.join(", ")
            ),
            ViewError::ParameterNotInHead { view, parameter } => write!(
                f,
                "view `{view}`: parameter {parameter} does not appear in the view head (X ⊆ Y violated)"
            ),
            ViewError::FunctionColumnOutOfRange { view, column, arity } => write!(
                f,
                "view `{view}`: citation function references column {column} but C_V has arity {arity}"
            ),
            ViewError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ViewError {}

impl From<QueryError> for ViewError {
    fn from(e: QueryError) -> Self {
        ViewError::Query(e)
    }
}

/// Result alias for view operations.
pub type Result<T> = std::result::Result<T, ViewError>;

/// A citation view: the triple `(V, C_V, F_V)`.
#[derive(Debug, Clone)]
pub struct CitationView {
    /// View name (also the head predicate name of `V`).
    pub name: String,
    /// The view definition `λX. V(Y) :- Q`.
    pub view: ConjunctiveQuery,
    /// The citation query `λX. C_V(Y') :- Q'`.
    pub citation_query: ConjunctiveQuery,
    /// The citation function `F_V`.
    pub function: CitationFunction,
}

impl CitationView {
    /// Assemble a citation view. Structural validation happens in
    /// [`CitationView::validate`].
    pub fn new(
        view: ConjunctiveQuery,
        citation_query: ConjunctiveQuery,
        function: CitationFunction,
    ) -> Self {
        CitationView {
            name: view.name.clone(),
            view,
            citation_query,
            function,
        }
    }

    /// λ-parameters (shared by `V` and `C_V`).
    pub fn params(&self) -> &[String] {
        &self.view.params
    }

    /// Is the view parameterized?
    pub fn is_parameterized(&self) -> bool {
        self.view.is_parameterized()
    }

    /// Position of each λ-parameter in the view head — well-defined
    /// because Def. 2.1 requires `X ⊆ Y`. Errors if violated.
    pub fn param_positions(&self) -> Result<Vec<usize>> {
        self.view
            .params
            .iter()
            .map(|p| {
                self.view
                    .head
                    .iter()
                    .position(|t| t.as_var() == Some(p.as_str()))
                    .ok_or_else(|| ViewError::ParameterNotInHead {
                        view: self.name.clone(),
                        parameter: p.clone(),
                    })
            })
            .collect()
    }

    /// Validate the triple against a catalog:
    /// * `V` and `C_V` are safe and schema-conformant;
    /// * both declare the same parameter list;
    /// * `X ⊆ Y` (parameters appear in the view head);
    /// * the citation function's columns fit `C_V`'s head arity.
    pub fn validate(&self, catalog: &fgc_relation::Catalog) -> Result<()> {
        check_safety(&self.view)?;
        check_safety(&self.citation_query)?;
        check_against_catalog(&self.view, catalog)?;
        check_against_catalog(&self.citation_query, catalog)?;
        if self.view.params != self.citation_query.params {
            return Err(ViewError::ParameterListsDiffer {
                view: self.name.clone(),
                view_params: self.view.params.clone(),
                citation_params: self.citation_query.params.clone(),
            });
        }
        self.param_positions()?;
        if let Some(max) = self.function.max_column() {
            if max >= self.citation_query.arity() {
                return Err(ViewError::FunctionColumnOutOfRange {
                    view: self.name.clone(),
                    column: max,
                    arity: self.citation_query.arity(),
                });
            }
        }
        Ok(())
    }

    /// The *unparameterized extent* of the view: evaluate `V` with
    /// the λ ignored. Because `X ⊆ Y`, the instantiation
    /// `V(Y)(a₁..aₙ)` is exactly the selection of the extent on the
    /// parameter positions — this is what makes rewritings over
    /// parameterized views executable against materialized extents.
    pub fn extent(&self, db: &Database) -> Result<Vec<Tuple>> {
        let mut unparameterized = self.view.clone();
        unparameterized.params.clear();
        Ok(evaluate(db, &unparameterized)?)
    }

    /// The instantiated view `V(Y)(args)`.
    pub fn instance(&self, db: &Database, args: &[Value]) -> Result<Vec<Tuple>> {
        let inst = self.view.instantiate(args)?;
        Ok(evaluate(db, &inst)?)
    }

    /// The citation for the valuation `args`:
    /// `F_V(C_V(Y')(a₁..aₙ))` — Definition 2.1's semantics.
    pub fn citation_for(&self, db: &Database, args: &[Value]) -> Result<Json> {
        let inst = self.citation_query.instantiate(args)?;
        let rows = evaluate(db, &inst)?;
        Ok(self.function.apply(&rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgc_query::parse_query;
    use fgc_relation::schema::RelationSchema;
    use fgc_relation::{tuple, DataType};

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::with_names(
                "Family",
                &[
                    ("FID", DataType::Str),
                    ("FName", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::with_names(
                "Person",
                &[
                    ("PID", DataType::Str),
                    ("PName", DataType::Str),
                    ("Affiliation", DataType::Str),
                ],
                &["PID"],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::with_names(
                "FC",
                &[("FID", DataType::Str), ("PID", DataType::Str)],
                &["FID", "PID"],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert_all(
            "Family",
            vec![
                tuple!["11", "Calcitonin", "gpcr"],
                tuple!["12", "Orexin", "gpcr"],
            ],
        )
        .unwrap();
        db.insert_all(
            "Person",
            vec![tuple!["p1", "Hay", "UoA"], tuple!["p2", "Poyner", "Aston"]],
        )
        .unwrap();
        db.insert_all("FC", vec![tuple!["11", "p1"], tuple!["11", "p2"]])
            .unwrap();
        db
    }

    fn v1() -> CitationView {
        CitationView::new(
            parse_query("lambda F. V1(F, N, Ty) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda F. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)")
                .unwrap(),
            CitationFunction::from_spec(vec![
                CitationFunction::scalar("ID", 0),
                CitationFunction::scalar("Name", 1),
                CitationFunction::collect("Committee", 2),
            ]),
        )
    }

    #[test]
    fn validates_against_catalog() {
        let db = sample_db();
        v1().validate(db.catalog()).unwrap();
    }

    #[test]
    fn paper_example_2_1_citation_for_family_11() {
        let db = sample_db();
        let citation = v1().citation_for(&db, &[Value::str("11")]).unwrap();
        assert_eq!(
            citation.to_compact(),
            r#"{"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}"#
        );
    }

    #[test]
    fn citation_for_family_without_committee_is_null() {
        let db = sample_db();
        // family 12 has no FC rows -> citation query returns nothing
        let citation = v1().citation_for(&db, &[Value::str("12")]).unwrap();
        assert!(citation.is_null());
    }

    #[test]
    fn instance_selects_by_parameter() {
        let db = sample_db();
        let rows = v1().instance(&db, &[Value::str("11")]).unwrap();
        assert_eq!(rows, vec![tuple!["11", "Calcitonin", "gpcr"]]);
    }

    #[test]
    fn extent_is_union_of_instances() {
        let db = sample_db();
        let extent = v1().extent(&db).unwrap();
        assert_eq!(extent.len(), 2);
        let pos = v1().param_positions().unwrap();
        assert_eq!(pos, vec![0]);
        // selecting the extent on the param position reproduces the instance
        let selected: Vec<Tuple> = extent
            .into_iter()
            .filter(|t| t[0] == Value::str("11"))
            .collect();
        assert_eq!(selected, v1().instance(&db, &[Value::str("11")]).unwrap());
    }

    #[test]
    fn mismatched_parameter_lists_rejected() {
        let db = sample_db();
        let bad = CitationView::new(
            parse_query("lambda F. V(F, N, Ty) :- Family(F, N, Ty)").unwrap(),
            parse_query("CV(N) :- Family(F, N, Ty)").unwrap(),
            CitationFunction::from_spec(vec![]),
        );
        assert!(matches!(
            bad.validate(db.catalog()).unwrap_err(),
            ViewError::ParameterListsDiffer { .. }
        ));
    }

    #[test]
    fn param_not_in_head_rejected() {
        let db = sample_db();
        let bad = CitationView::new(
            parse_query("lambda Ty. V(F, N) :- Family(F, N, Ty)").unwrap(),
            parse_query("lambda Ty. CV(N) :- Family(F, N, Ty)").unwrap(),
            CitationFunction::from_spec(vec![]),
        );
        assert!(matches!(
            bad.validate(db.catalog()).unwrap_err(),
            ViewError::ParameterNotInHead { .. }
        ));
    }

    #[test]
    fn function_column_out_of_range_rejected() {
        let db = sample_db();
        let bad = CitationView::new(
            parse_query("V(N) :- Family(F, N, Ty)").unwrap(),
            parse_query("CV(N) :- Family(F, N, Ty)").unwrap(),
            CitationFunction::from_spec(vec![CitationFunction::scalar("X", 5)]),
        );
        assert!(matches!(
            bad.validate(db.catalog()).unwrap_err(),
            ViewError::FunctionColumnOutOfRange { .. }
        ));
    }

    #[test]
    fn unsafe_view_rejected() {
        let db = sample_db();
        let bad = CitationView::new(
            parse_query("V(X) :- Family(F, N, Ty)").unwrap(),
            parse_query("CV(N) :- Family(F, N, Ty)").unwrap(),
            CitationFunction::from_spec(vec![]),
        );
        assert!(matches!(
            bad.validate(db.catalog()).unwrap_err(),
            ViewError::Query(QueryError::Unsafe { .. })
        ));
    }
}
