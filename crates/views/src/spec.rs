//! A text format for declaring citation views — the paper's call for
//! "a language for the specification of the black boxes, allowing
//! for their analysis" (§4), in file form:
//!
//! ```text
//! % family pages, cited by their committee
//! @view
//! lambda F. V1(F, N, Ty) :- Family(F, N, Ty)
//! lambda F. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)
//! @fields ID = 0, Name = 1, Committee = [2]
//! ```
//!
//! Each `@view` block holds the view definition, the citation query
//! (parameterized by the same λ), and a `@fields` line describing the
//! citation function:
//!
//! * `Label = N` — scalar from column `N`;
//! * `Label = [N]` — collect distinct values of column `N`;
//! * `Label = "text"` — constant field.
//!
//! (Nested `Group` functions are API-only; files cover the common
//! flat citations.)

use crate::function::{CitationFunction, FieldSpec};
use crate::json::Json;
use crate::view::{CitationView, Result, ViewError};
use fgc_query::{parse_query, QueryError};

fn syntax_error(line: usize, message: impl Into<String>) -> ViewError {
    ViewError::Query(QueryError::Syntax {
        position: line,
        message: message.into(),
    })
}

/// Parse a `@fields` specification line (without the directive).
fn parse_fields(spec: &str, line: usize) -> Result<Vec<FieldSpec>> {
    let mut fields = Vec::new();
    for part in split_top_level(spec) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let eq = part
            .find('=')
            .ok_or_else(|| syntax_error(line, format!("field `{part}` needs `=`")))?;
        let label = part[..eq].trim().to_string();
        let rhs = part[eq + 1..].trim();
        if label.is_empty() {
            return Err(syntax_error(line, "empty field label"));
        }
        let field = if let Some(inner) = rhs.strip_prefix('[') {
            let inner = inner
                .strip_suffix(']')
                .ok_or_else(|| syntax_error(line, format!("unclosed `[` in `{part}`")))?;
            let column: usize = inner
                .trim()
                .parse()
                .map_err(|_| syntax_error(line, format!("bad column index `{inner}`")))?;
            FieldSpec::Collect { label, column }
        } else if rhs.starts_with('"') {
            let value = fgc_relation::Value::parse(rhs)
                .and_then(|v| v.as_str().map(|s| s.to_string()))
                .ok_or_else(|| syntax_error(line, format!("bad constant `{rhs}`")))?;
            FieldSpec::Constant {
                label,
                value: Json::str(value),
            }
        } else {
            let column: usize = rhs
                .parse()
                .map_err(|_| syntax_error(line, format!("bad column index `{rhs}`")))?;
            FieldSpec::Scalar { label, column }
        };
        fields.push(field);
    }
    Ok(fields)
}

/// Split on commas outside quotes and brackets.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut buf = String::new();
    let mut in_str = false;
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                buf.push(c);
            }
            '[' if !in_str => {
                depth += 1;
                buf.push(c);
            }
            ']' if !in_str => {
                depth = depth.saturating_sub(1);
                buf.push(c);
            }
            ',' if !in_str && depth == 0 => {
                out.push(std::mem::take(&mut buf));
            }
            c => buf.push(c),
        }
    }
    out.push(buf);
    out
}

/// Parse a whole view file into citation views.
pub fn parse_view_file(text: &str) -> Result<Vec<CitationView>> {
    #[derive(Default)]
    struct Block {
        start: usize,
        queries: Vec<(usize, String)>,
        fields: Option<(usize, String)>,
    }
    let mut blocks: Vec<Block> = Vec::new();
    let mut current: Option<Block> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            continue;
        }
        if line == "@view" {
            if let Some(block) = current.take() {
                blocks.push(block);
            }
            current = Some(Block {
                start: lineno,
                ..Block::default()
            });
            continue;
        }
        let Some(block) = current.as_mut() else {
            return Err(syntax_error(lineno, "content before the first @view"));
        };
        if let Some(rest) = line.strip_prefix("@fields") {
            if block.fields.is_some() {
                return Err(syntax_error(lineno, "duplicate @fields in view block"));
            }
            block.fields = Some((lineno, rest.trim().to_string()));
        } else {
            block.queries.push((lineno, line.to_string()));
        }
    }
    if let Some(block) = current.take() {
        blocks.push(block);
    }

    let mut views = Vec::with_capacity(blocks.len());
    for block in blocks {
        if block.queries.len() != 2 {
            return Err(syntax_error(
                block.start,
                format!(
                    "a @view block needs exactly 2 queries (view + citation query), found {}",
                    block.queries.len()
                ),
            ));
        }
        let view = parse_query(&block.queries[0].1)?;
        let citation_query = parse_query(&block.queries[1].1)?;
        let function = match &block.fields {
            Some((line, spec)) => CitationFunction::from_spec(parse_fields(spec, *line)?),
            None => {
                // default: every citation-query output column becomes
                // a scalar field named after its head term
                let fields = citation_query
                    .head
                    .iter()
                    .enumerate()
                    .map(|(i, t)| FieldSpec::Scalar {
                        label: t.to_string(),
                        column: i,
                    })
                    .collect();
                CitationFunction::from_spec(fields)
            }
        };
        views.push(CitationView::new(view, citation_query, function));
    }
    Ok(views)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
% the paper's V1
@view
lambda F. V1(F, N, Ty) :- Family(F, N, Ty)
lambda F. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)
@fields ID = 0, Name = 1, Committee = [2]

@view
V3(F, N, Ty) :- Family(F, N, Ty)
CV3(X1, X2) :- MetaData(T1, X1), T1 = "Owner", MetaData(T2, X2), T2 = "URL"
@fields Owner = 0, URL = 1, Database = "GtoPdb"
"#;

    #[test]
    fn parses_two_view_blocks() {
        let views = parse_view_file(SAMPLE).unwrap();
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].name, "V1");
        assert_eq!(views[0].params(), &["F".to_string()]);
        assert_eq!(views[1].name, "V3");
        assert!(!views[1].is_parameterized());
    }

    #[test]
    fn fields_round_trip_through_function() {
        use fgc_relation::tuple;
        let views = parse_view_file(SAMPLE).unwrap();
        let rows = vec![
            tuple!["11", "Calcitonin", "Hay"],
            tuple!["11", "Calcitonin", "Poyner"],
        ];
        let citation = views[0].function.apply(&rows);
        assert_eq!(
            citation.to_compact(),
            r#"{"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}"#
        );
    }

    #[test]
    fn constant_fields_parse() {
        let views = parse_view_file(SAMPLE).unwrap();
        use fgc_relation::tuple;
        let citation = views[1].function.apply(&[tuple!["o", "u"]]);
        assert_eq!(citation.get("Database"), Some(&Json::str("GtoPdb")));
    }

    #[test]
    fn default_function_uses_head_terms() {
        let views = parse_view_file(
            "@view\nlambda F. V(F, N) :- Family(F, N, Ty)\nlambda F. CV(F, N) :- Family(F, N, Ty)",
        )
        .unwrap();
        use fgc_relation::tuple;
        let citation = views[0].function.apply(&[tuple!["11", "Calcitonin"]]);
        assert_eq!(citation.get("F"), Some(&Json::str("11")));
        assert_eq!(citation.get("N"), Some(&Json::str("Calcitonin")));
    }

    #[test]
    fn wrong_query_count_rejected() {
        let err = parse_view_file("@view\nV(F) :- Family(F, N, Ty)").unwrap_err();
        assert!(err.to_string().contains("exactly 2"));
    }

    #[test]
    fn content_before_view_rejected() {
        assert!(parse_view_file("V(F) :- R(F)").is_err());
    }

    #[test]
    fn bad_field_specs_rejected() {
        let base = "@view\nV(F) :- Family(F, N, Ty)\nCV(F) :- Family(F, N, Ty)\n";
        for bad in [
            "@fields ID",
            "@fields ID = x",
            "@fields ID = [1",
            "@fields = 0",
        ] {
            assert!(
                parse_view_file(&format!("{base}{bad}")).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn duplicate_fields_rejected() {
        let err =
            parse_view_file("@view\nV(F) :- R(F)\nCV(F) :- R(F)\n@fields A = 0\n@fields B = 0")
                .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }
}
