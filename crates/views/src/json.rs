//! An owned JSON value with the merge combinators the paper's §3.3
//! gives as "natural interpretations" of `·` and `+R` (Example 3.5).
//!
//! This is intentionally *not* a general-purpose JSON library: the
//! union/join combinators are part of the citation model itself
//! ("One natural interpretation of · is simply the union of the
//! records ... A different choice of · 'joins' the records, i.e.
//! factors out common elements"), so the representation is tuned for
//! them — objects keep insertion order (citations read like the
//! paper's examples), arrays used as *sets* deduplicate.

use std::fmt;
use std::fmt::Write as _;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (citations use ids and counts).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array. Combinators treat arrays as sets (dedup, order kept).
    Array(Vec<Json>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// An empty object.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Build an object from `(key, value)` pairs.
    pub fn from_pairs<I, K>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace a field (objects only; no-op otherwise).
    pub fn set(&mut self, key: impl Into<String>, value: Json) {
        if let Json::Object(fields) = self {
            let key = key.into();
            match fields.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v = value,
                None => fields.push((key, value)),
            }
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Structural equality up to object-field order and array order
    /// (citations assembled along different paths may enumerate
    /// fields differently).
    pub fn equivalent(&self, other: &Json) -> bool {
        self.canonical() == other.canonical()
    }

    /// Canonical form: object fields sorted by key, arrays sorted by
    /// rendered form and deduplicated.
    pub fn canonical(&self) -> Json {
        match self {
            Json::Array(items) => {
                let mut canon: Vec<Json> = items.iter().map(Json::canonical).collect();
                canon.sort_by_key(|a| a.to_compact());
                canon.dedup();
                Json::Array(canon)
            }
            Json::Object(fields) => {
                let mut canon: Vec<(String, Json)> = fields
                    .iter()
                    .map(|(k, v)| (k.clone(), v.canonical()))
                    .collect();
                canon.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Object(canon)
            }
            other => other.clone(),
        }
    }

    /// Compact serialization (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Approximate size in bytes of the compact serialization —
    /// the "size of the resulting citation" measured by experiment E3.
    pub fn size_bytes(&self) -> usize {
        self.to_compact().len()
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => {
                let _ = write!(out, "{x:?}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    newline_indent(out, indent, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::str(s)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Self {
        Json::Int(i)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<fgc_relation::Value> for Json {
    fn from(v: fgc_relation::Value) -> Self {
        use fgc_relation::Value;
        match v {
            Value::Null => Json::Null,
            Value::Bool(b) => Json::Bool(b),
            Value::Int(i) => Json::Int(i),
            Value::Float(x) => Json::Float(x),
            Value::Str(s) => Json::Str(s.to_string()),
        }
    }
}

// ---------------------------------------------------------------------
// The Example 3.5 combinators
// ---------------------------------------------------------------------

/// `·`/`+R` as **union of records**: collect the operands into a set
/// (array) of records. Flattens nested unions and deduplicates, so
/// the operation is associative, commutative, and idempotent.
pub fn union_records(a: &Json, b: &Json) -> Json {
    let mut items = Vec::new();
    collect_records(a, &mut items);
    collect_records(b, &mut items);
    dedup_preserving_order(&mut items);
    match items.len() {
        0 => Json::Null, // the empty citation is the neutral element
        1 => items.pop().expect("non-empty"),
        _ => Json::Array(items),
    }
}

fn collect_records(j: &Json, out: &mut Vec<Json>) {
    match j {
        // Null is the empty citation: it contributes nothing, whether
        // it appears as an operand or as an array element. Arrays are
        // record sets and flatten recursively, so `[]` ≡ Null and the
        // union is associative and closed on its own output.
        Json::Null => {}
        Json::Array(items) => {
            for item in items {
                collect_records(item, out);
            }
        }
        other => out.push(other.clone()),
    }
}

fn dedup_preserving_order(items: &mut Vec<Json>) {
    let mut seen: Vec<Json> = Vec::new();
    items.retain(|j| {
        let c = j.canonical();
        if seen.contains(&c) {
            false
        } else {
            seen.push(c);
            true
        }
    });
}

/// `·`/`+R` as **join**: "factors out common elements". Two objects
/// merge field-wise — shared keys merge recursively; equal scalars
/// collapse; arrays union; genuinely conflicting scalars widen into
/// an array (set) of both. Non-objects fall back to union semantics.
pub fn join_records(a: &Json, b: &Json) -> Json {
    match (a, b) {
        (Json::Null, x) | (x, Json::Null) => x.clone(),
        (Json::Object(fa), Json::Object(fb)) => {
            let mut fields: Vec<(String, Json)> = fa.clone();
            for (k, vb) in fb {
                match fields.iter_mut().find(|(fk, _)| fk == k) {
                    Some((_, va)) => {
                        *va = join_field(va, vb);
                    }
                    None => fields.push((k.clone(), vb.clone())),
                }
            }
            Json::Object(fields)
        }
        (Json::Array(_), _) | (_, Json::Array(_)) => union_records(a, b),
        (x, y) if x == y => x.clone(),
        _ => union_records(a, b),
    }
}

/// Merge two values sitting under the same object key.
fn join_field(a: &Json, b: &Json) -> Json {
    match (a, b) {
        (x, y) if x == y => x.clone(),
        (Json::Null, x) | (x, Json::Null) => x.clone(),
        (Json::Array(_), _) | (_, Json::Array(_)) => union_records(a, b),
        (Json::Object(_), Json::Object(_)) => join_records(a, b),
        _ => union_records(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calcitonin_committee() -> Json {
        Json::from_pairs([
            ("ID", Json::str("11")),
            ("Name", Json::str("Calcitonin")),
            (
                "Committee",
                Json::Array(vec![Json::str("Hay"), Json::str("Poyner")]),
            ),
        ])
    }

    fn calcitonin_contributors() -> Json {
        Json::from_pairs([
            ("ID", Json::str("11")),
            ("Name", Json::str("Calcitonin")),
            ("Text", Json::str("The calcitonin peptide family")),
            (
                "Contributors",
                Json::Array(vec![Json::str("Brown"), Json::str("Smith")]),
            ),
        ])
    }

    #[test]
    fn compact_serialization_matches_paper_style() {
        let c = calcitonin_committee();
        assert_eq!(
            c.to_compact(),
            r#"{"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}"#
        );
    }

    #[test]
    fn pretty_serialization_indents() {
        let c = Json::from_pairs([("a", Json::Int(1))]);
        assert_eq!(c.to_pretty(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn string_escaping() {
        let s = Json::str("a\"b\\c\nd");
        assert_eq!(s.to_compact(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn example_3_5_union_interpretation() {
        // union of the two Calcitonin records: a set of both records
        let u = union_records(&calcitonin_committee(), &calcitonin_contributors());
        match &u {
            Json::Array(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0], calcitonin_committee());
                assert_eq!(items[1], calcitonin_contributors());
            }
            other => panic!("expected array, got {other}"),
        }
    }

    #[test]
    fn example_3_5_join_interpretation() {
        // join factors out ID and Name
        let j = join_records(&calcitonin_committee(), &calcitonin_contributors());
        let expected = Json::from_pairs([
            ("ID", Json::str("11")),
            ("Name", Json::str("Calcitonin")),
            (
                "Committee",
                Json::Array(vec![Json::str("Hay"), Json::str("Poyner")]),
            ),
            ("Text", Json::str("The calcitonin peptide family")),
            (
                "Contributors",
                Json::Array(vec![Json::str("Brown"), Json::str("Smith")]),
            ),
        ]);
        assert_eq!(j, expected);
    }

    #[test]
    fn example_3_5_plus_r_join_merges_committees() {
        // {ID, Name, Committee: [Hay, Poyner]} +R {ID, Committee: [Brown], Contributors: [Smith]}
        let a = calcitonin_committee();
        let b = Json::from_pairs([
            ("ID", Json::str("11")),
            ("Committee", Json::Array(vec![Json::str("Brown")])),
            ("Contributors", Json::Array(vec![Json::str("Smith")])),
        ]);
        let merged = join_records(&a, &b);
        assert_eq!(
            merged.get("Committee"),
            Some(&Json::Array(vec![
                Json::str("Hay"),
                Json::str("Poyner"),
                Json::str("Brown")
            ]))
        );
        assert_eq!(
            merged.get("Contributors"),
            Some(&Json::Array(vec![Json::str("Smith")]))
        );
        assert_eq!(merged.get("Name"), Some(&Json::str("Calcitonin")));
    }

    #[test]
    fn union_is_idempotent_and_flattens() {
        let a = calcitonin_committee();
        let u1 = union_records(&a, &a);
        assert_eq!(u1, a); // single record stays a record
        let u2 = union_records(&union_records(&a, &calcitonin_contributors()), &a);
        match u2 {
            Json::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other}"),
        }
    }

    #[test]
    fn union_with_null_is_identity() {
        let a = calcitonin_committee();
        assert_eq!(union_records(&a, &Json::Null), a);
        assert_eq!(union_records(&Json::Null, &a), a);
        assert_eq!(join_records(&Json::Null, &a), a);
    }

    #[test]
    fn join_conflicting_scalars_widen_to_set() {
        let a = Json::from_pairs([("Owner", Json::str("Harmar"))]);
        let b = Json::from_pairs([("Owner", Json::str("Davenport"))]);
        let j = join_records(&a, &b);
        assert_eq!(
            j.get("Owner"),
            Some(&Json::Array(vec![
                Json::str("Harmar"),
                Json::str("Davenport")
            ]))
        );
    }

    #[test]
    fn equivalence_ignores_field_and_array_order() {
        let a = Json::from_pairs([
            ("x", Json::Int(1)),
            ("y", Json::Array(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let b = Json::from_pairs([
            ("y", Json::Array(vec![Json::Int(2), Json::Int(1)])),
            ("x", Json::Int(1)),
        ]);
        assert!(a.equivalent(&b));
        assert_ne!(a, b); // plain equality is order-sensitive
    }

    #[test]
    fn get_and_set() {
        let mut o = Json::object();
        o.set("a", Json::Int(1));
        o.set("a", Json::Int(2));
        assert_eq!(o.get("a"), Some(&Json::Int(2)));
        assert_eq!(o.get("b"), None);
        assert_eq!(Json::Int(3).get("a"), None);
    }

    #[test]
    fn size_bytes_reflects_compactness() {
        let single = calcitonin_committee();
        let unioned = union_records(&single, &calcitonin_contributors());
        assert!(unioned.size_bytes() > single.size_bytes());
    }

    #[test]
    fn from_value_conversions() {
        use fgc_relation::Value;
        assert_eq!(Json::from(Value::str("x")), Json::str("x"));
        assert_eq!(Json::from(Value::Int(3)), Json::Int(3));
        assert_eq!(Json::from(Value::Null), Json::Null);
    }
}
