//! Query containment and equivalence for conjunctive queries with
//! comparison predicates.
//!
//! Definition 2.2 of the paper requires rewritings to be *equivalent*
//! to the original query; the preference model (Ex. 3.8) additionally
//! uses *view inclusion*. Both reduce to containment.
//!
//! For pure CQs, `Q1 ⊆ Q2` iff there is a containment mapping
//! (homomorphism) from `Q2` to `Q1` (Chandra–Merlin). We first
//! normalize both queries by propagating equality comparisons
//! ([`normalize`]); for queries whose comparisons are all equalities
//! (every query in the paper) the test is then sound **and
//! complete**. Residual inequality comparisons are handled by a
//! syntactic implication check on the homomorphic image, which keeps
//! the test *sound* but incomplete (containment may be reported
//! `false` for exotic inequality interactions — the classic
//! completeness construction enumerates linear orders and is
//! exponential; see Klug 1988). This restriction is documented in
//! DESIGN.md §3.

use crate::ast::{Atom, CompOp, Comparison, ConjunctiveQuery, Term};
use crate::subst::{apply_query, resolve, unify_terms, Substitution};
use fgc_relation::Value;
use std::collections::HashMap;

/// Outcome of equality propagation.
#[derive(Debug, Clone)]
pub enum Normalized {
    /// The query is unsatisfiable (contradictory equalities), i.e. it
    /// always returns the empty set.
    Unsatisfiable,
    /// The normalized query: no `=` comparisons remain; ground
    /// residual comparisons have been evaluated away.
    Query(ConjunctiveQuery),
}

/// Propagate equality comparisons into the query: `X = c` substitutes
/// `c` for `X` everywhere, `X = Y` unifies the variables. Ground
/// comparisons are evaluated; a false one makes the query
/// unsatisfiable. The result contains no `Eq` comparisons.
pub fn normalize(q: &ConjunctiveQuery) -> Normalized {
    let mut subst = Substitution::new();
    for c in &q.comparisons {
        if c.op == CompOp::Eq && !unify_terms(&mut subst, &c.left, &c.right) {
            return Normalized::Unsatisfiable;
        }
    }
    // fully resolve the substitution
    let subst: Substitution = q
        .all_vars()
        .iter()
        .filter_map(|v| {
            let t = resolve(&subst, &Term::Var(v.to_string()));
            if t == Term::Var(v.to_string()) {
                None
            } else {
                Some((v.to_string(), t))
            }
        })
        .collect();
    let mut out = apply_query(&subst, q);
    let mut kept = Vec::new();
    for c in out.comparisons.drain(..) {
        if c.op == CompOp::Eq {
            match (&c.left, &c.right) {
                (Term::Const(a), Term::Const(b)) => {
                    if a != b {
                        return Normalized::Unsatisfiable;
                    }
                    // true: drop
                }
                (l, r) if l == r => { /* trivially true: drop */ }
                _ => unreachable!("unify_terms eliminated non-trivial equalities"),
            }
        } else {
            match (&c.left, &c.right) {
                (Term::Const(a), Term::Const(b)) => {
                    if !c.op.eval(a, b) {
                        return Normalized::Unsatisfiable;
                    }
                }
                (l, r) if l == r => {
                    // X op X: false for Ne/Lt/Gt, true for Le/Ge
                    if matches!(c.op, CompOp::Ne | CompOp::Lt | CompOp::Gt) {
                        return Normalized::Unsatisfiable;
                    }
                }
                _ => kept.push(c.normalized()),
            }
        }
    }
    kept.sort();
    kept.dedup();
    out.comparisons = kept;
    // λ-parameters may have been substituted by constants; keep only
    // those still appearing as variables (callers deal with absorbed
    // parameters explicitly).
    let remaining: Vec<String> = {
        let vars = out.all_vars();
        out.params
            .iter()
            .filter(|p| vars.contains(p.as_str()))
            .cloned()
            .collect()
    };
    out.params = remaining;
    Normalized::Query(out)
}

/// Interval + exclusion constraints on a single variable, derived
/// from `Var op Const` comparisons.
#[derive(Debug, Clone, Default)]
struct VarConstraint {
    lower: Option<(Value, bool)>, // (bound, strict)
    upper: Option<(Value, bool)>,
    not_equal: Vec<Value>,
}

impl VarConstraint {
    fn add(&mut self, op: CompOp, v: &Value) {
        match op {
            CompOp::Gt | CompOp::Ge => {
                let strict = op == CompOp::Gt;
                let better = match &self.lower {
                    None => true,
                    Some((cur, cur_strict)) => v > cur || (v == cur && strict && !*cur_strict),
                };
                if better {
                    self.lower = Some((v.clone(), strict));
                }
            }
            CompOp::Lt | CompOp::Le => {
                let strict = op == CompOp::Lt;
                let better = match &self.upper {
                    None => true,
                    Some((cur, cur_strict)) => v < cur || (v == cur && strict && !*cur_strict),
                };
                if better {
                    self.upper = Some((v.clone(), strict));
                }
            }
            CompOp::Ne => self.not_equal.push(v.clone()),
            CompOp::Eq => unreachable!("equalities are propagated away"),
        }
    }

    /// Does this constraint imply `var op v`?
    fn implies(&self, op: CompOp, v: &Value) -> bool {
        match op {
            CompOp::Gt => matches!(&self.lower, Some((b, strict)) if b > v || (b == v && *strict)),
            CompOp::Ge => matches!(&self.lower, Some((b, _)) if b >= v),
            CompOp::Lt => matches!(&self.upper, Some((b, strict)) if b < v || (b == v && *strict)),
            CompOp::Le => matches!(&self.upper, Some((b, _)) if b <= v),
            CompOp::Ne => {
                self.not_equal.contains(v)
                    || self.implies(CompOp::Lt, v)
                    || self.implies(CompOp::Gt, v)
            }
            CompOp::Eq => false,
        }
    }
}

/// Comparison context of a normalized query.
struct CompContext {
    per_var: HashMap<String, VarConstraint>,
    var_var: Vec<Comparison>,
}

impl CompContext {
    fn build(q: &ConjunctiveQuery) -> Self {
        let mut per_var: HashMap<String, VarConstraint> = HashMap::new();
        let mut var_var = Vec::new();
        for c in &q.comparisons {
            let c = c.normalized();
            match (&c.left, &c.right) {
                (Term::Var(x), Term::Const(v)) => {
                    per_var.entry(x.clone()).or_default().add(c.op, v);
                }
                (Term::Var(_), Term::Var(_)) => var_var.push(c.clone()),
                _ => {}
            }
        }
        CompContext { per_var, var_var }
    }

    /// Is the (already image-mapped, normalized) comparison implied?
    fn implies(&self, c: &Comparison) -> bool {
        match (&c.left, &c.right) {
            (Term::Const(a), Term::Const(b)) => c.op.eval(a, b),
            (l, r) if l == r => matches!(c.op, CompOp::Le | CompOp::Ge | CompOp::Eq),
            (Term::Var(x), Term::Const(v)) => {
                self.per_var.get(x).is_some_and(|vc| vc.implies(c.op, v))
            }
            (Term::Var(_), Term::Var(_)) => self
                .var_var
                .iter()
                .any(|own| own.left == c.left && own.right == c.right && op_implies(own.op, c.op)),
            _ => false,
        }
    }
}

/// Does `a op1 b` imply `a op2 b` for all values?
fn op_implies(op1: CompOp, op2: CompOp) -> bool {
    use CompOp::*;
    matches!(
        (op1, op2),
        (Eq, Eq)
            | (Eq, Le)
            | (Eq, Ge)
            | (Ne, Ne)
            | (Lt, Lt)
            | (Lt, Le)
            | (Lt, Ne)
            | (Le, Le)
            | (Gt, Gt)
            | (Gt, Ge)
            | (Gt, Ne)
            | (Ge, Ge)
    )
}

/// Search for a containment mapping from `q2` into `q1` (both must be
/// normalized): a substitution `h` on `q2`'s variables with
/// `h(head2) = head1`, every atom of `q2` mapped onto an atom of
/// `q1`, and every comparison of `q2` implied by `q1`'s comparisons.
fn find_homomorphism(q2: &ConjunctiveQuery, q1: &ConjunctiveQuery) -> Option<Substitution> {
    if q2.head.len() != q1.head.len() {
        return None;
    }
    let mut h = Substitution::new();
    // head must map positionally
    for (t2, t1) in q2.head.iter().zip(&q1.head) {
        match t2 {
            Term::Const(c2) => {
                if t2 != t1 {
                    // constant in q2's head must appear identically
                    if t1.as_const() != Some(c2) {
                        return None;
                    }
                }
            }
            Term::Var(v) => match h.get(v.as_str()) {
                Some(existing) => {
                    if existing != t1 {
                        return None;
                    }
                }
                None => {
                    h.insert(v.clone(), t1.clone());
                }
            },
        }
    }
    let ctx1 = CompContext::build(q1);
    fn try_atoms(
        atoms2: &[Atom],
        idx: usize,
        q1: &ConjunctiveQuery,
        h: &mut Substitution,
        ctx1: &CompContext,
        comparisons2: &[Comparison],
    ) -> bool {
        if idx == atoms2.len() {
            // all atoms mapped: check comparisons of q2 under h
            return comparisons2.iter().all(|c| {
                let mapped = Comparison {
                    left: crate::subst::apply_term(h, &c.left),
                    op: c.op,
                    right: crate::subst::apply_term(h, &c.right),
                }
                .normalized();
                ctx1.implies(&mapped)
            });
        }
        let a2 = &atoms2[idx];
        for a1 in &q1.atoms {
            if a1.relation != a2.relation || a1.terms.len() != a2.terms.len() {
                continue;
            }
            // try mapping a2 onto a1
            let mut trial = h.clone();
            let mut ok = true;
            for (t2, t1) in a2.terms.iter().zip(&a1.terms) {
                match t2 {
                    Term::Const(_) => {
                        if t2 != t1 {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match trial.get(v.as_str()) {
                        Some(existing) => {
                            if existing != t1 {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            trial.insert(v.clone(), t1.clone());
                        }
                    },
                }
            }
            if ok && try_atoms(atoms2, idx + 1, q1, &mut trial, ctx1, comparisons2) {
                *h = trial;
                return true;
            }
        }
        false
    }
    let comparisons2 = q2.comparisons.clone();
    let mut atoms2 = q2.atoms.clone();
    // heuristic: map atoms with more constants/shared vars first
    atoms2.sort_by_key(|a| usize::MAX - a.terms.iter().filter(|t| !t.is_var()).count());
    if try_atoms(&atoms2, 0, q1, &mut h, &ctx1, &comparisons2) {
        Some(h)
    } else {
        None
    }
}

/// Crate-internal entry point for [`crate::chase`]: homomorphism
/// search between *already normalized and freshened* queries.
pub(crate) fn find_homomorphism_public(q2: &ConjunctiveQuery, q1: &ConjunctiveQuery) -> bool {
    find_homomorphism(q2, q1).is_some()
}

/// Is `q1 ⊆ q2`? (Every output of `q1` is an output of `q2`, over
/// every database.) Sound always; complete when, after equality
/// propagation, `q2` has no residual inequality comparisons or they
/// are directly implied (see module docs).
pub fn is_contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    let n1 = match normalize(q1) {
        Normalized::Unsatisfiable => return true, // ∅ ⊆ anything
        Normalized::Query(q) => q,
    };
    let n2 = match normalize(q2) {
        Normalized::Unsatisfiable => {
            // q2 is empty: containment iff q1 is empty too — we only
            // know syntactic unsatisfiability, so require it.
            return matches!(normalize(q1), Normalized::Unsatisfiable);
        }
        Normalized::Query(q) => q,
    };
    // avoid accidental variable capture between the two queries
    let n1 = n1.freshen("_l");
    let n2 = n2.freshen("_r");
    find_homomorphism(&n2, &n1).is_some()
}

/// Are the queries equivalent (mutual containment)?
pub fn equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    is_contained_in(q1, q2) && is_contained_in(q2, q1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn q(src: &str) -> ConjunctiveQuery {
        parse_query(src).unwrap()
    }

    #[test]
    fn identical_queries_are_equivalent() {
        let a = q("Q(X) :- R(X, Y)");
        assert!(equivalent(&a, &a));
    }

    #[test]
    fn renamed_queries_are_equivalent() {
        let a = q("Q(X) :- R(X, Y), S(Y, Z)");
        let b = q("Q(A) :- R(A, B), S(B, C)");
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn more_atoms_contained_in_fewer() {
        // Q1 joins, Q2 only scans: Q1 ⊆ Q2 but not conversely
        let q1 = q("Q(X) :- R(X, Y), S(Y, Z)");
        let q2 = q("Q(X) :- R(X, Y)");
        assert!(is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q2, &q1));
    }

    #[test]
    fn redundant_atom_is_equivalent() {
        let a = q("Q(X) :- R(X, Y), R(X, Z)");
        let b = q("Q(X) :- R(X, Y)");
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn selection_restricts() {
        let sel = q("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\"");
        let all = q("Q(N) :- Family(F, N, Ty)");
        assert!(is_contained_in(&sel, &all));
        assert!(!is_contained_in(&all, &sel));
    }

    #[test]
    fn equal_selections_are_equivalent() {
        let a = q("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\"");
        let b = q("Q(N) :- Family(F, N, \"gpcr\")");
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn different_constants_not_equivalent() {
        let a = q("Q(N) :- Family(F, N, \"gpcr\")");
        let b = q("Q(N) :- Family(F, N, \"enzyme\")");
        assert!(!is_contained_in(&a, &b));
        assert!(!is_contained_in(&b, &a));
    }

    #[test]
    fn head_projection_matters() {
        let a = q("Q(X) :- R(X, Y)");
        let b = q("Q(Y) :- R(X, Y)");
        assert!(!is_contained_in(&a, &b));
    }

    #[test]
    fn unsatisfiable_contained_in_everything() {
        let bad = q("Q(X) :- R(X), X = 1, X = 2");
        let any = q("Q(X) :- R(X)");
        assert!(is_contained_in(&bad, &any));
        assert!(!is_contained_in(&any, &bad));
    }

    #[test]
    fn paper_example_2_3_rewriting_q4_equivalent() {
        // Q(N,Tx) :- Family(F,N,Ty), FamilyIntro(F,Tx), Ty="gpcr"
        // expansion of Q4 = V5("gpcr") is the same modulo renaming
        let original = q("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"");
        let expansion = q("Q(N2, Tx2) :- Family(F2, N2, \"gpcr\"), FamilyIntro(F2, Tx2)");
        assert!(equivalent(&original, &expansion));
    }

    #[test]
    fn inequality_containment_sound_cases() {
        let tight = q("Q(X) :- R(X), X > 5");
        let loose = q("Q(X) :- R(X), X > 3");
        assert!(is_contained_in(&tight, &loose));
        assert!(!is_contained_in(&loose, &tight));
        // strict implies non-strict
        let strict = q("Q(X) :- R(X), X > 5");
        let nonstrict = q("Q(X) :- R(X), X >= 5");
        assert!(is_contained_in(&strict, &nonstrict));
        assert!(!is_contained_in(&nonstrict, &strict));
    }

    #[test]
    fn ne_implied_by_strict_bound() {
        let lt = q("Q(X) :- R(X), X < 5");
        let ne = q("Q(X) :- R(X), X != 5");
        assert!(is_contained_in(&lt, &ne));
        assert!(!is_contained_in(&ne, &lt));
    }

    #[test]
    fn var_var_comparison_containment() {
        let lt = q("Q(X, Y) :- R(X, Y), X < Y");
        let ne = q("Q(X, Y) :- R(X, Y), X != Y");
        let all = q("Q(X, Y) :- R(X, Y)");
        assert!(is_contained_in(&lt, &ne));
        assert!(is_contained_in(&lt, &all));
        assert!(!is_contained_in(&all, &lt));
    }

    #[test]
    fn normalize_eliminates_equalities() {
        let n = normalize(&q("Q(X, Y) :- R(X, Y), X = Y, Y = 3"));
        match n {
            Normalized::Query(nq) => {
                assert!(nq.comparisons.is_empty());
                assert_eq!(nq.head, vec![Term::val(3), Term::val(3)]);
            }
            Normalized::Unsatisfiable => panic!("should be satisfiable"),
        }
    }

    #[test]
    fn normalize_detects_contradiction() {
        assert!(matches!(
            normalize(&q("Q(X) :- R(X), X = 1, X = 2")),
            Normalized::Unsatisfiable
        ));
        assert!(matches!(
            normalize(&q("Q(X) :- R(X), X = 1, X != 1")),
            Normalized::Unsatisfiable
        ));
        assert!(matches!(
            normalize(&q("Q(X) :- R(X, Y), X = Y, X < Y")),
            Normalized::Unsatisfiable
        ));
    }

    #[test]
    fn constants_in_atoms_respected_by_homomorphism() {
        let a = q("Q(X) :- R(X, \"a\")");
        let b = q("Q(X) :- R(X, \"b\")");
        assert!(!is_contained_in(&a, &b));
        let general = q("Q(X) :- R(X, Y)");
        assert!(is_contained_in(&a, &general));
        assert!(!is_contained_in(&general, &a));
    }

    #[test]
    fn self_join_vs_single_atom() {
        // Q(X) :- R(X,X) is contained in Q(X) :- R(X,Y) but not conversely
        let diag = q("Q(X) :- R(X, X)");
        let gen = q("Q(X) :- R(X, Y)");
        assert!(is_contained_in(&diag, &gen));
        assert!(!is_contained_in(&gen, &diag));
    }
}
