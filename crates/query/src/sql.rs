//! A small SQL front-end: `SELECT ... FROM ... WHERE ...` over
//! conjunctive queries.
//!
//! The paper's interface is "general queries against the relational
//! database"; curators think in SQL, the model is defined on CQs.
//! This module translates the SPJ fragment:
//!
//! ```text
//! SELECT f.FName, i.Text
//! FROM Family f, FamilyIntro i
//! WHERE f.FID = i.FID AND f.Type = 'gpcr'
//! ```
//!
//! * every `FROM` item becomes an atom with one fresh variable per
//!   column (`f_FID`, `f_FName`, ...);
//! * `alias.col = alias.col` equalities become shared variables
//!   (joins);
//! * all other predicates become comparison subgoals;
//! * `SELECT *` selects every column of every alias in order;
//! * string literals use single quotes, doubled to escape (`''`).

use crate::ast::{Atom, CompOp, Comparison, ConjunctiveQuery, Term};
use crate::error::{QueryError, Result};
use crate::subst::{unify_terms, Substitution};
use fgc_relation::schema::Catalog;
use fgc_relation::Value;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    QualIdent(String, String), // alias.column
    Str(String),
    Int(i64),
    Float(f64),
    Comma,
    Star,
    Op(CompOp),
    KwSelect,
    KwFrom,
    KwWhere,
    KwAnd,
    KwDistinct,
    KwAs,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        let start = pos;
        let err = |pos: usize, m: &str| QueryError::Syntax {
            position: pos,
            message: m.into(),
        };
        match b {
            b',' => {
                out.push((start, Tok::Comma));
                pos += 1;
            }
            b'*' => {
                out.push((start, Tok::Star));
                pos += 1;
            }
            b'=' => {
                out.push((start, Tok::Op(CompOp::Eq)));
                pos += 1;
            }
            b'!' if bytes.get(pos + 1) == Some(&b'=') => {
                out.push((start, Tok::Op(CompOp::Ne)));
                pos += 2;
            }
            b'<' => match bytes.get(pos + 1) {
                Some(&b'=') => {
                    out.push((start, Tok::Op(CompOp::Le)));
                    pos += 2;
                }
                Some(&b'>') => {
                    out.push((start, Tok::Op(CompOp::Ne)));
                    pos += 2;
                }
                _ => {
                    out.push((start, Tok::Op(CompOp::Lt)));
                    pos += 1;
                }
            },
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push((start, Tok::Op(CompOp::Ge)));
                    pos += 2;
                } else {
                    out.push((start, Tok::Op(CompOp::Gt)));
                    pos += 1;
                }
            }
            b'\'' => {
                pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(pos) {
                        None => return Err(err(pos, "unterminated string literal")),
                        Some(b'\'') => {
                            if bytes.get(pos + 1) == Some(&b'\'') {
                                s.push('\'');
                                pos += 2;
                            } else {
                                pos += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            let c = src[pos..].chars().next().expect("char");
                            s.push(c);
                            pos += c.len_utf8();
                        }
                    }
                }
                out.push((start, Tok::Str(s)));
            }
            b'-' | b'0'..=b'9' => {
                if b == b'-' {
                    pos += 1;
                }
                let mut is_float = false;
                while let Some(&c) = bytes.get(pos) {
                    if c.is_ascii_digit() {
                        pos += 1;
                    } else if c == b'.' && !is_float {
                        is_float = true;
                        pos += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[start..pos];
                if is_float {
                    out.push((
                        start,
                        Tok::Float(text.parse().map_err(|_| err(start, "bad float"))?),
                    ));
                } else {
                    out.push((
                        start,
                        Tok::Int(text.parse().map_err(|_| err(start, "bad integer"))?),
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while let Some(&c) = bytes.get(pos) {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        pos += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..pos];
                let tok = match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Tok::KwSelect,
                    "FROM" => Tok::KwFrom,
                    "WHERE" => Tok::KwWhere,
                    "AND" => Tok::KwAnd,
                    "DISTINCT" => Tok::KwDistinct,
                    "AS" => Tok::KwAs,
                    _ => {
                        if bytes.get(pos) == Some(&b'.') {
                            pos += 1;
                            let col_start = pos;
                            while let Some(&c) = bytes.get(pos) {
                                if c.is_ascii_alphanumeric() || c == b'_' {
                                    pos += 1;
                                } else {
                                    break;
                                }
                            }
                            if col_start == pos {
                                return Err(err(pos, "expected column after `.`"));
                            }
                            Tok::QualIdent(word.to_string(), src[col_start..pos].to_string())
                        } else {
                            Tok::Ident(word.to_string())
                        }
                    }
                };
                out.push((start, tok));
            }
            other => {
                return Err(err(
                    start,
                    &format!("unexpected character `{}`", other as char),
                ));
            }
        }
    }
    Ok(out)
}

/// Variable name for `alias.column`.
fn column_var(alias: &str, column: &str) -> String {
    format!("{alias}_{column}")
}

/// Translate an SPJ SQL query to a conjunctive query named `Q`.
pub fn parse_sql(catalog: &Catalog, sql: &str) -> Result<ConjunctiveQuery> {
    let tokens = lex(sql)?;
    let mut i = 0usize;
    let position = |i: usize| tokens.get(i).map(|(p, _)| *p).unwrap_or(sql.len());
    let err = |i: usize, m: &str| QueryError::Syntax {
        position: position(i),
        message: m.into(),
    };
    let tok = |i: usize| tokens.get(i).map(|(_, t)| t);

    if tok(i) != Some(&Tok::KwSelect) {
        return Err(err(i, "expected SELECT"));
    }
    i += 1;
    if tok(i) == Some(&Tok::KwDistinct) {
        i += 1; // set semantics anyway
    }

    // --- projection list (resolved after FROM) ---
    enum Proj {
        All,
        Cols(Vec<(String, String)>), // (alias, column)
    }
    let projection = if tok(i) == Some(&Tok::Star) {
        i += 1;
        Proj::All
    } else {
        let mut cols = Vec::new();
        loop {
            match tok(i) {
                Some(Tok::QualIdent(a, c)) => {
                    cols.push((a.clone(), c.clone()));
                    i += 1;
                    // optional "AS name" — citation model ignores output names
                    if tok(i) == Some(&Tok::KwAs) {
                        i += 2;
                    }
                }
                _ => return Err(err(i, "expected alias.column in SELECT list")),
            }
            if tok(i) == Some(&Tok::Comma) {
                i += 1;
            } else {
                break;
            }
        }
        Proj::Cols(cols)
    };

    // --- FROM ---
    if tok(i) != Some(&Tok::KwFrom) {
        return Err(err(i, "expected FROM"));
    }
    i += 1;
    let mut from: Vec<(String, String)> = Vec::new(); // (alias, relation)
    loop {
        let rel = match tok(i) {
            Some(Tok::Ident(r)) => r.clone(),
            _ => return Err(err(i, "expected relation name in FROM")),
        };
        i += 1;
        if tok(i) == Some(&Tok::KwAs) {
            i += 1;
        }
        let alias = match tok(i) {
            Some(Tok::Ident(a)) => {
                i += 1;
                a.clone()
            }
            _ => rel.clone(), // no alias: relation name itself
        };
        if from.iter().any(|(a, _)| a == &alias) {
            return Err(err(i, &format!("duplicate alias `{alias}`")));
        }
        from.push((alias, rel));
        if tok(i) == Some(&Tok::Comma) {
            i += 1;
        } else {
            break;
        }
    }

    // build atoms with per-column variables
    let mut atoms = Vec::new();
    for (alias, rel) in &from {
        let schema = catalog.get(rel)?;
        let terms = schema
            .attribute_names()
            .map(|c| Term::Var(column_var(alias, c)))
            .collect();
        atoms.push(Atom::new(rel.clone(), terms));
    }
    let resolve_col = |i: usize, alias: &str, col: &str| -> Result<String> {
        let (_, rel) = from
            .iter()
            .find(|(a, _)| a == alias)
            .ok_or_else(|| err(i, &format!("unknown alias `{alias}`")))?;
        let schema = catalog.get(rel)?;
        schema.position(col)?; // validates the column exists
        Ok(column_var(alias, col))
    };

    // --- WHERE ---
    let mut join_subst = Substitution::new();
    let mut comparisons = Vec::new();
    if tok(i) == Some(&Tok::KwWhere) {
        i += 1;
        loop {
            let lhs = match tok(i) {
                Some(Tok::QualIdent(a, c)) => {
                    let v = resolve_col(i, a, c)?;
                    i += 1;
                    Term::Var(v)
                }
                _ => return Err(err(i, "expected alias.column on the left of a predicate")),
            };
            let op = match tok(i) {
                Some(Tok::Op(op)) => {
                    i += 1;
                    *op
                }
                _ => return Err(err(i, "expected comparison operator")),
            };
            let rhs = match tok(i) {
                Some(Tok::QualIdent(a, c)) => {
                    let v = resolve_col(i, a, c)?;
                    i += 1;
                    Term::Var(v)
                }
                Some(Tok::Str(s)) => {
                    i += 1;
                    Term::Const(Value::str(s))
                }
                Some(Tok::Int(n)) => {
                    i += 1;
                    Term::Const(Value::Int(*n))
                }
                Some(Tok::Float(x)) => {
                    i += 1;
                    Term::Const(Value::float(*x))
                }
                _ => return Err(err(i, "expected column or literal on the right")),
            };
            if op == CompOp::Eq && lhs.is_var() && rhs.is_var() {
                // join condition: unify the two column variables
                if !unify_terms(&mut join_subst, &lhs, &rhs) {
                    return Err(err(i, "contradictory join condition"));
                }
            } else {
                comparisons.push(Comparison::new(lhs, op, rhs));
            }
            if tok(i) == Some(&Tok::KwAnd) {
                i += 1;
            } else {
                break;
            }
        }
    }
    if i != tokens.len() {
        return Err(err(i, "trailing input after query"));
    }

    // --- head ---
    let head: Vec<Term> = match projection {
        Proj::All => from
            .iter()
            .flat_map(|(alias, rel)| {
                let schema = catalog.get(rel).expect("validated above");
                schema
                    .attribute_names()
                    .map(|c| Term::Var(column_var(alias, c)))
                    .collect::<Vec<_>>()
            })
            .collect(),
        Proj::Cols(cols) => {
            let mut out = Vec::new();
            for (a, c) in cols {
                out.push(Term::Var(resolve_col(usize::MAX, &a, &c)?));
            }
            out
        }
    };

    let q = ConjunctiveQuery {
        name: "Q".into(),
        params: Vec::new(),
        head,
        atoms,
        comparisons,
    };
    Ok(crate::subst::apply_query(&join_subst, &q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use crate::parser::parse_query;
    use fgc_relation::schema::RelationSchema;
    use fgc_relation::DataType;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::with_names(
                "Family",
                &[
                    ("FID", DataType::Str),
                    ("FName", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::with_names(
                "FamilyIntro",
                &[("FID", DataType::Str), ("Text", DataType::Str)],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    #[test]
    fn select_project_join_translates() {
        let cat = catalog();
        let q = parse_sql(
            &cat,
            "SELECT f.FName, i.Text FROM Family f, FamilyIntro i \
             WHERE f.FID = i.FID AND f.Type = 'gpcr'",
        )
        .unwrap();
        let expected =
            parse_query("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"").unwrap();
        assert!(equivalent(&q, &expected), "got {q}");
    }

    #[test]
    fn select_star() {
        let cat = catalog();
        let q = parse_sql(&cat, "SELECT * FROM Family f").unwrap();
        assert_eq!(q.arity(), 3);
        assert_eq!(q.atoms.len(), 1);
    }

    #[test]
    fn no_alias_defaults_to_relation_name() {
        let cat = catalog();
        let q = parse_sql(
            &cat,
            "SELECT Family.FName FROM Family WHERE Family.Type = 'gpcr'",
        )
        .unwrap();
        let expected = parse_query("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\"").unwrap();
        assert!(equivalent(&q, &expected));
    }

    #[test]
    fn distinct_and_as_are_accepted() {
        let cat = catalog();
        let q = parse_sql(&cat, "SELECT DISTINCT f.FName AS name FROM Family AS f").unwrap();
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn quoted_string_escapes() {
        let cat = catalog();
        let q = parse_sql(
            &cat,
            "SELECT f.FName FROM Family f WHERE f.FName = 'O''Brien'",
        )
        .unwrap();
        assert_eq!(q.comparisons[0].right, Term::val("O'Brien"));
    }

    #[test]
    fn inequality_predicates() {
        let cat = catalog();
        let q = parse_sql(
            &cat,
            "SELECT f.FName FROM Family f WHERE f.FID >= '11' AND f.FID != '13'",
        )
        .unwrap();
        assert_eq!(q.comparisons.len(), 2);
    }

    #[test]
    fn unknown_column_rejected() {
        let cat = catalog();
        assert!(parse_sql(&cat, "SELECT f.Nope FROM Family f").is_err());
    }

    #[test]
    fn unknown_relation_rejected() {
        let cat = catalog();
        assert!(parse_sql(&cat, "SELECT x.A FROM Nope x").is_err());
    }

    #[test]
    fn unknown_alias_rejected() {
        let cat = catalog();
        assert!(parse_sql(&cat, "SELECT g.FName FROM Family f").is_err());
    }

    #[test]
    fn duplicate_alias_rejected() {
        let cat = catalog();
        assert!(parse_sql(&cat, "SELECT f.FName FROM Family f, FamilyIntro f").is_err());
    }

    #[test]
    fn self_join_with_two_aliases() {
        let cat = catalog();
        let q = parse_sql(
            &cat,
            "SELECT a.FName, b.FName FROM Family a, Family b \
             WHERE a.Type = b.Type AND a.FID != b.FID",
        )
        .unwrap();
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.comparisons.len(), 1); // the != survives; = became a join
        let expected =
            parse_query("Q(N1, N2) :- Family(F1, N1, T), Family(F2, N2, T), F1 != F2").unwrap();
        assert!(equivalent(&q, &expected));
    }
}
