//! Parser for the Datalog-style query syntax used by the paper.
//!
//! ```text
//! lambda F. V1(F, N, Ty) :- Family(F, N, Ty)
//! Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)
//! ```
//!
//! Conventions:
//! * identifiers in term position are **variables**;
//! * constants are quoted strings, numbers, `true`/`false`, `NULL`;
//! * the optional `lambda x1, ..., xn.` prefix declares parameters
//!   (the paper's λ-term);
//! * comparison operators: `=`, `!=` (or `<>`), `<`, `<=`, `>`, `>=`.

use crate::ast::{Atom, CompOp, Comparison, ConjunctiveQuery, Term};
use crate::error::{QueryError, Result};
use fgc_relation::Value;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    LParen,
    RParen,
    Comma,
    Dot,
    Turnstile, // :-
    Op(CompOp),
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Syntax {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Next token with its starting position, or `None` at end.
    fn next(&mut self) -> Result<Option<(usize, Token)>> {
        self.skip_ws();
        let start = self.pos;
        let Some(b) = self.peek_byte() else {
            return Ok(None);
        };
        let tok = match b {
            b'(' => {
                self.pos += 1;
                Token::LParen
            }
            b')' => {
                self.pos += 1;
                Token::RParen
            }
            b',' => {
                self.pos += 1;
                Token::Comma
            }
            b'.' => {
                self.pos += 1;
                Token::Dot
            }
            b':' => {
                if self.bytes.get(self.pos + 1) == Some(&b'-') {
                    self.pos += 2;
                    Token::Turnstile
                } else {
                    return Err(self.error("expected `:-`"));
                }
            }
            b'=' => {
                self.pos += 1;
                Token::Op(CompOp::Eq)
            }
            b'!' => {
                if self.bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Token::Op(CompOp::Ne)
                } else {
                    return Err(self.error("expected `!=`"));
                }
            }
            b'<' => match self.bytes.get(self.pos + 1) {
                Some(&b'=') => {
                    self.pos += 2;
                    Token::Op(CompOp::Le)
                }
                Some(&b'>') => {
                    self.pos += 2;
                    Token::Op(CompOp::Ne)
                }
                _ => {
                    self.pos += 1;
                    Token::Op(CompOp::Lt)
                }
            },
            b'>' => {
                if self.bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Token::Op(CompOp::Ge)
                } else {
                    self.pos += 1;
                    Token::Op(CompOp::Gt)
                }
            }
            b'"' => {
                let mut out = String::new();
                self.pos += 1;
                loop {
                    match self.peek_byte() {
                        None => return Err(self.error("unterminated string literal")),
                        Some(b'"') => {
                            self.pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            self.pos += 1;
                            match self.peek_byte() {
                                Some(b'"') => out.push('"'),
                                Some(b'\\') => out.push('\\'),
                                Some(b'n') => out.push('\n'),
                                Some(b't') => out.push('\t'),
                                Some(other) => {
                                    out.push('\\');
                                    out.push(other as char);
                                }
                                None => return Err(self.error("unterminated escape")),
                            }
                            self.pos += 1;
                        }
                        Some(_) => {
                            // advance one full UTF-8 character
                            let rest = &self.src[self.pos..];
                            let c = rest.chars().next().expect("non-empty");
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                    }
                }
                Token::Str(out)
            }
            b'-' | b'0'..=b'9' => {
                let num_start = self.pos;
                if b == b'-' {
                    self.pos += 1;
                }
                let mut is_float = false;
                while let Some(c) = self.peek_byte() {
                    if c.is_ascii_digit() {
                        self.pos += 1;
                    } else if c == b'.'
                        && !is_float
                        && self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_digit)
                    {
                        is_float = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = &self.src[num_start..self.pos];
                if is_float {
                    Token::Float(text.parse().map_err(|_| self.error("bad float"))?)
                } else {
                    Token::Int(text.parse().map_err(|_| self.error("bad integer"))?)
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while let Some(c) = self.peek_byte() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Token::Ident(self.src[start..self.pos].to_string())
            }
            other => return Err(self.error(format!("unexpected character `{}`", other as char))),
        };
        Ok(Some((start, tok)))
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    cursor: usize,
    end: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self> {
        let mut lexer = Lexer::new(src);
        let mut tokens = Vec::new();
        while let Some(t) = lexer.next()? {
            tokens.push(t);
        }
        Ok(Parser {
            tokens,
            cursor: 0,
            end: src.len(),
        })
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.cursor)
            .map(|(p, _)| *p)
            .unwrap_or(self.end)
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Syntax {
            position: self.position(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.cursor).map(|(_, t)| t)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.cursor).map(|(_, t)| t.clone());
        if t.is_some() {
            self.cursor += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<()> {
        match self.advance() {
            Some(t) if &t == expected => Ok(()),
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn term(&mut self) -> Result<Term> {
        match self.advance() {
            Some(Token::Ident(s)) => match s.as_str() {
                "true" => Ok(Term::Const(Value::Bool(true))),
                "false" => Ok(Term::Const(Value::Bool(false))),
                "NULL" => Ok(Term::Const(Value::Null)),
                _ => Ok(Term::Var(s)),
            },
            Some(Token::Str(s)) => Ok(Term::Const(Value::str(s))),
            Some(Token::Int(i)) => Ok(Term::Const(Value::Int(i))),
            Some(Token::Float(x)) => Ok(Term::Const(Value::float(x))),
            _ => Err(self.error("expected a term")),
        }
    }

    fn term_list(&mut self) -> Result<Vec<Term>> {
        self.expect(&Token::LParen, "`(`")?;
        let mut terms = Vec::new();
        if self.peek() == Some(&Token::RParen) {
            self.advance();
            return Ok(terms);
        }
        loop {
            terms.push(self.term()?);
            match self.advance() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                _ => return Err(self.error("expected `,` or `)`")),
            }
        }
        Ok(terms)
    }

    fn query(&mut self) -> Result<ConjunctiveQuery> {
        // optional lambda prefix
        let mut params = Vec::new();
        if matches!(self.peek(), Some(Token::Ident(s)) if s == "lambda") {
            self.advance();
            loop {
                params.push(self.ident("parameter name")?);
                match self.peek() {
                    Some(Token::Comma) => {
                        self.advance();
                    }
                    Some(Token::Dot) => {
                        self.advance();
                        break;
                    }
                    _ => return Err(self.error("expected `,` or `.` after parameter")),
                }
            }
        }
        let name = self.ident("query name")?;
        let head = self.term_list()?;
        self.expect(&Token::Turnstile, "`:-`")?;
        let mut atoms = Vec::new();
        let mut comparisons = Vec::new();
        loop {
            // lookahead: Ident '(' => atom; otherwise comparison
            let is_atom = matches!(
                (self.peek(), self.tokens.get(self.cursor + 1).map(|(_, t)| t)),
                (Some(Token::Ident(s)), Some(Token::LParen))
                    if !matches!(s.as_str(), "true" | "false" | "NULL")
            );
            if is_atom {
                let rel = self.ident("relation name")?;
                let terms = self.term_list()?;
                atoms.push(Atom::new(rel, terms));
            } else {
                let left = self.term()?;
                let op = match self.advance() {
                    Some(Token::Op(op)) => op,
                    _ => return Err(self.error("expected comparison operator")),
                };
                let right = self.term()?;
                comparisons.push(Comparison::new(left, op, right));
            }
            match self.peek() {
                Some(Token::Comma) => {
                    self.advance();
                }
                None => break,
                _ => return Err(self.error("expected `,` or end of query")),
            }
        }
        Ok(ConjunctiveQuery {
            name,
            params,
            head,
            atoms,
            comparisons,
        })
    }
}

/// Parse a single conjunctive query (with optional λ-prefix).
pub fn parse_query(src: &str) -> Result<ConjunctiveQuery> {
    let mut p = Parser::new(src)?;
    let q = p.query()?;
    if p.cursor != p.tokens.len() {
        return Err(p.error("trailing input after query"));
    }
    Ok(q)
}

/// Parse a program: one query per non-empty, non-`%`-comment line.
pub fn parse_program(src: &str) -> Result<Vec<ConjunctiveQuery>> {
    let mut out = Vec::new();
    for line in src.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        out.push(parse_query(line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_query() {
        let q = parse_query("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\"").unwrap();
        assert_eq!(q.name, "Q");
        assert_eq!(q.head, vec![Term::var("N")]);
        assert_eq!(q.atoms.len(), 1);
        assert_eq!(q.comparisons.len(), 1);
        assert_eq!(q.comparisons[0].right, Term::val("gpcr"));
    }

    #[test]
    fn parse_lambda_prefix() {
        let q = parse_query("lambda F. V1(F, N, Ty) :- Family(F, N, Ty)").unwrap();
        assert_eq!(q.params, vec!["F"]);
        assert!(q.is_parameterized());
    }

    #[test]
    fn parse_multiple_params() {
        let q = parse_query("lambda X, Y. V(X, Y) :- R(X, Y)").unwrap();
        assert_eq!(q.params, vec!["X", "Y"]);
    }

    #[test]
    fn parse_round_trips_display() {
        let sources = [
            "lambda F. V1(F, N, Ty) :- Family(F, N, Ty)",
            "Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = \"gpcr\"",
            "CV3(X1, X2) :- MetaData(T1, X1), MetaData(T2, X2), T1 = \"Owner\", T2 = \"URL\"",
            "Q(X) :- R(X, Y), X != Y, Y >= 3",
        ];
        for src in sources {
            let q = parse_query(src).unwrap();
            let q2 = parse_query(&q.to_string()).unwrap();
            assert_eq!(q, q2, "display round-trip failed for {src}");
        }
    }

    #[test]
    fn parse_constants_in_atoms() {
        let q = parse_query("Q(X) :- MetaData(\"Owner\", X)").unwrap();
        assert_eq!(q.atoms[0].terms[0], Term::val("Owner"));
    }

    #[test]
    fn parse_numeric_and_bool_constants() {
        let q = parse_query("Q(X) :- R(X, 3, -4, 2.5, true, NULL)").unwrap();
        let t = &q.atoms[0].terms;
        assert_eq!(t[1], Term::val(3));
        assert_eq!(t[2], Term::val(-4));
        assert_eq!(t[3], Term::val(2.5));
        assert_eq!(t[4], Term::val(true));
        assert_eq!(t[5], Term::Const(Value::Null));
    }

    #[test]
    fn parse_ne_variants() {
        let a = parse_query("Q(X) :- R(X), X != 1").unwrap();
        let b = parse_query("Q(X) :- R(X), X <> 1").unwrap();
        assert_eq!(a.comparisons, b.comparisons);
    }

    #[test]
    fn parse_empty_head() {
        let q = parse_query("Q() :- R(X)").unwrap();
        assert!(q.head.is_empty());
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_query("Q(N) :- Family(F, N, ").unwrap_err();
        match err {
            QueryError::Syntax { position, .. } => assert!(position >= 20),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn reject_trailing_garbage() {
        assert!(parse_query("Q(X) :- R(X) garbage(").is_err());
    }

    #[test]
    fn reject_missing_turnstile() {
        assert!(parse_query("Q(X) R(X)").is_err());
    }

    #[test]
    fn reject_unterminated_string() {
        assert!(parse_query("Q(X) :- R(X), X = \"abc").is_err());
    }

    #[test]
    fn parse_program_skips_comments() {
        let qs = parse_program(
            "% the paper's V1 and V2\nlambda F. V1(F, N, Ty) :- Family(F, N, Ty)\n\nlambda F. V2(F, Tx) :- FamilyIntro(F, Tx)\n",
        )
        .unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[1].name, "V2");
    }

    #[test]
    fn escaped_strings() {
        let q = parse_query(r#"Q(X) :- R(X), X = "a\"b\\c""#).unwrap();
        assert_eq!(q.comparisons[0].right, Term::val("a\"b\\c"));
    }
}
