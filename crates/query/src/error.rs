//! Error types for the query crate.

use std::fmt;

/// Errors raised by parsing, validation, and evaluation of queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Syntax error while parsing a query.
    Syntax {
        /// Byte offset in the input where the error was detected.
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// A query failed the safety (range-restriction) check.
    Unsafe {
        /// Query name.
        query: String,
        /// Offending variable.
        variable: String,
        /// Why it is unsafe.
        reason: String,
    },
    /// A parameterized query was instantiated with the wrong number
    /// of arguments.
    ParameterMismatch {
        /// Query name.
        query: String,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        actual: usize,
    },
    /// An atom refers to a relation with the wrong arity.
    AtomArity {
        /// Relation name.
        relation: String,
        /// Arity in the schema.
        expected: usize,
        /// Arity used in the atom.
        actual: usize,
    },
    /// Errors bubbled up from the relational substrate.
    Relation(fgc_relation::RelationError),
    /// The evaluator exceeded a configured resource budget.
    BudgetExceeded {
        /// What budget was exhausted.
        what: String,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Syntax { position, message } => {
                write!(f, "syntax error at byte {position}: {message}")
            }
            QueryError::Unsafe {
                query,
                variable,
                reason,
            } => write!(f, "unsafe query `{query}`: variable {variable} {reason}"),
            QueryError::ParameterMismatch {
                query,
                expected,
                actual,
            } => write!(
                f,
                "query `{query}` takes {expected} parameters, got {actual}"
            ),
            QueryError::AtomArity {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "atom over `{relation}` has arity {actual}, schema says {expected}"
            ),
            QueryError::Relation(e) => write!(f, "{e}"),
            QueryError::BudgetExceeded { what, limit } => {
                write!(f, "budget exceeded: more than {limit} {what}")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fgc_relation::RelationError> for QueryError {
    fn from(e: fgc_relation::RelationError) -> Self {
        QueryError::Relation(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, QueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = QueryError::Unsafe {
            query: "Q".into(),
            variable: "X".into(),
            reason: "appears only in the head".into(),
        };
        assert!(e.to_string().contains('X'));
    }

    #[test]
    fn relation_errors_convert() {
        let e: QueryError = fgc_relation::RelationError::UnknownRelation("R".into()).into();
        assert!(matches!(e, QueryError::Relation(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
