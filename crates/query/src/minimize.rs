//! Conjunctive-query minimization (core computation).
//!
//! Definition 2.2 requires that "no subgoal of Q′ can be removed and
//! obtain an equivalent query": rewriting candidates are reduced to
//! their *core* before validity checks. Minimization also underlies
//! the paper's open question on avoiding exhaustive enumeration —
//! minimal rewritings are exactly the ones the preference orders rank.

use crate::ast::ConjunctiveQuery;
use crate::containment::equivalent;

/// Minimize a query by greedily removing redundant atoms: repeatedly
/// try dropping each atom and keep the removal if the query stays
/// equivalent. The result is a *core* of the input (unique up to
/// isomorphism for CQs without comparisons).
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = q.clone();
    loop {
        let mut reduced = None;
        for i in 0..current.atoms.len() {
            if current.atoms.len() == 1 {
                break; // keep at least one atom for safety
            }
            let mut candidate = current.clone();
            candidate.atoms.remove(i);
            // removal must not strand head/param/comparison variables
            if crate::safety::check_safety(&candidate).is_err() {
                continue;
            }
            if equivalent(&candidate, q) {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => current = c,
            None => break,
        }
    }
    current
}

/// Is the query minimal (no atom can be removed)?
pub fn is_minimal(q: &ConjunctiveQuery) -> bool {
    minimize(q).atoms.len() == q.atoms.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn q(src: &str) -> ConjunctiveQuery {
        parse_query(src).unwrap()
    }

    #[test]
    fn removes_redundant_atom() {
        let query = q("Q(X) :- R(X, Y), R(X, Z)");
        let min = minimize(&query);
        assert_eq!(min.atoms.len(), 1);
        assert!(equivalent(&min, &query));
    }

    #[test]
    fn keeps_necessary_join() {
        let query = q("Q(X) :- R(X, Y), S(Y, Z)");
        assert!(is_minimal(&query));
    }

    #[test]
    fn keeps_atoms_binding_head_vars() {
        let query = q("Q(X, Y) :- R(X, Z), R(W, Y)");
        let min = minimize(&query);
        assert_eq!(min.atoms.len(), 2);
    }

    #[test]
    fn triangle_with_shortcut() {
        // R(X,Y), R(Y,Z), R(X,Z) is minimal (no hom collapses it)
        let query = q("Q(X, Z) :- R(X, Y), R(Y, Z), R(X, Z)");
        let min = minimize(&query);
        // R(X,Y),R(Y,Z) cannot replace R(X,Z): the triangle is minimal
        assert_eq!(min.atoms.len(), 3);
    }

    #[test]
    fn chain_folds_onto_shorter_chain() {
        // boolean query: two-step chain folds onto one atom
        let query = q("Q() :- R(X, Y), R(Y2, Z)");
        let min = minimize(&query);
        assert_eq!(min.atoms.len(), 1);
    }

    #[test]
    fn comparison_blocks_removal() {
        let query = q("Q(X) :- R(X, Y), R(X, Z), Z > 5");
        let min = minimize(&query);
        // R(X,Z) with Z>5 is a real restriction; R(X,Y) is redundant
        assert_eq!(min.atoms.len(), 1);
        assert!(min.comparisons.len() == 1);
        assert!(equivalent(&min, &query));
    }

    #[test]
    fn minimization_preserves_selection_constants() {
        let query = q("Q(N) :- Family(F, N, \"gpcr\"), Family(F, N, Ty)");
        let min = minimize(&query);
        assert_eq!(min.atoms.len(), 1);
        assert!(equivalent(&min, &query));
    }
}
