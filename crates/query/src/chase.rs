//! The chase with key dependencies, and containment modulo keys.
//!
//! Plain CQ equivalence (Chandra–Merlin) is dependency-blind: the
//! rewriting `Q'(N, Ty) :- V6(F, N), V7(F, Ty)` over two projections
//! of `Family` is **not** equivalent to `Q(N, Ty) :- Family(F, N, Ty)`
//! in general — two `Family` rows could share `F`. It *is* equivalent
//! on every database where `FID` is a key, which curated databases
//! declare (the paper's schema underlines the keys).
//!
//! [`chase_keys`] saturates a query under key functional
//! dependencies: whenever two atoms over the same relation agree on
//! the key positions, their remaining positions are unified. The
//! result is satisfiability-equivalent on key-respecting databases,
//! and containment tested against the chased query is exactly
//! containment over such databases (chase & backchase, Deutsch–
//! Popa–Tannen).

use crate::ast::{ConjunctiveQuery, Term};
use crate::containment::{find_homomorphism_public, normalize, Normalized};
use crate::subst::{apply_query, resolve, unify_terms, Substitution};
use std::collections::HashMap;

/// Key dependencies: relation name → key positions (one key per
/// relation; empty/absent = no key).
#[derive(Debug, Clone, Default)]
pub struct Dependencies {
    keys: HashMap<String, Vec<usize>>,
}

impl Dependencies {
    /// No dependencies (plain CQ semantics).
    pub fn none() -> Self {
        Dependencies::default()
    }

    /// Record a key for a relation.
    pub fn with_key(mut self, relation: impl Into<String>, key: Vec<usize>) -> Self {
        if !key.is_empty() {
            self.keys.insert(relation.into(), key);
        }
        self
    }

    /// Harvest every primary key from a catalog.
    pub fn from_catalog(catalog: &fgc_relation::Catalog) -> Self {
        let mut deps = Dependencies::default();
        for schema in catalog.iter() {
            if schema.has_key() {
                deps.keys.insert(schema.name.clone(), schema.key.clone());
            }
        }
        deps
    }

    /// Key positions of a relation, if declared.
    pub fn key_of(&self, relation: &str) -> Option<&[usize]> {
        self.keys.get(relation).map(Vec::as_slice)
    }

    /// Are there any dependencies at all?
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Result of chasing: the saturated query, or proof that the query
/// is unsatisfiable on key-respecting databases (two atoms agree on
/// a key but conflict on a non-key constant).
#[derive(Debug, Clone)]
pub enum Chased {
    /// The chased (saturated, duplicate-free) query.
    Query(ConjunctiveQuery),
    /// No key-respecting database satisfies the body.
    Unsatisfiable,
}

/// Chase a (normalized) query with key dependencies to fixpoint.
pub fn chase_keys(q: &ConjunctiveQuery, deps: &Dependencies) -> Chased {
    let mut current = q.clone();
    loop {
        let mut subst = Substitution::new();
        let mut changed = false;
        'outer: for i in 0..current.atoms.len() {
            for j in (i + 1)..current.atoms.len() {
                let (a, b) = (&current.atoms[i], &current.atoms[j]);
                if a.relation != b.relation {
                    continue;
                }
                let Some(key) = deps.key_of(&a.relation) else {
                    continue;
                };
                if key.iter().any(|&k| k >= a.terms.len()) {
                    continue; // arity mismatch guards are upstream
                }
                // keys must agree *syntactically* (after resolution)
                let keys_equal = key
                    .iter()
                    .all(|&k| resolve(&subst, &a.terms[k]) == resolve(&subst, &b.terms[k]));
                if !keys_equal {
                    continue;
                }
                // unify every remaining position
                for pos in 0..a.terms.len() {
                    if !unify_terms(&mut subst, &a.terms[pos], &b.terms[pos]) {
                        return Chased::Unsatisfiable;
                    }
                }
                changed = true;
                break 'outer; // apply and restart (small queries)
            }
        }
        if !changed {
            break;
        }
        current = apply_query(&subst, &current);
        // drop exact duplicate atoms introduced by the merge
        let mut seen = Vec::new();
        current.atoms.retain(|a| {
            if seen.contains(a) {
                false
            } else {
                seen.push(a.clone());
                true
            }
        });
    }
    Chased::Query(current)
}

/// `q1 ⊆ q2` over all databases satisfying `deps`: chase `q1`, then
/// search a containment mapping from `q2` into the chased `q1`.
pub fn is_contained_in_under(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    deps: &Dependencies,
) -> bool {
    if deps.is_empty() {
        return crate::containment::is_contained_in(q1, q2);
    }
    let n1 = match normalize(q1) {
        Normalized::Unsatisfiable => return true,
        Normalized::Query(q) => q,
    };
    let n1 = match chase_keys(&n1, deps) {
        Chased::Unsatisfiable => return true,
        Chased::Query(q) => q,
    };
    let n2 = match normalize(q2) {
        Normalized::Unsatisfiable => return matches!(chase_keys(&n1, deps), Chased::Unsatisfiable),
        Normalized::Query(q) => q,
    };
    let n1 = n1.freshen("_l");
    let n2 = n2.freshen("_r");
    find_homomorphism_public(&n2, &n1)
}

/// Equivalence over all databases satisfying `deps`.
pub fn equivalent_under(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery, deps: &Dependencies) -> bool {
    is_contained_in_under(q1, q2, deps) && is_contained_in_under(q2, q1, deps)
}

/// Convenience: do two terms already resolve to the same thing?
#[allow(dead_code)]
fn same(subst: &Substitution, a: &Term, b: &Term) -> bool {
    resolve(subst, a) == resolve(subst, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use crate::parser::parse_query;

    fn family_key() -> Dependencies {
        Dependencies::none().with_key("Family", vec![0])
    }

    fn q(src: &str) -> ConjunctiveQuery {
        parse_query(src).unwrap()
    }

    #[test]
    fn chase_merges_atoms_sharing_a_key() {
        let query = q("Q(N, Ty) :- Family(F, N, T1), Family(F, N2, Ty)");
        let chased = match chase_keys(&query, &family_key()) {
            Chased::Query(c) => c,
            Chased::Unsatisfiable => panic!("satisfiable"),
        };
        assert_eq!(chased.atoms.len(), 1);
        // equivalent (plain) to the single-atom form after the merge
        assert!(equivalent(&chased, &q("Q(N, Ty) :- Family(F, N, Ty)")));
    }

    #[test]
    fn chase_detects_key_conflicts() {
        let query = q("Q(F) :- Family(F, N, \"gpcr\"), Family(F, N2, \"enzyme\")");
        assert!(matches!(
            chase_keys(&query, &family_key()),
            Chased::Unsatisfiable
        ));
    }

    #[test]
    fn chase_without_keys_is_identity() {
        let query = q("Q(N) :- Family(F, N, T1), Family(F, N2, T2)");
        match chase_keys(&query, &Dependencies::none()) {
            Chased::Query(c) => assert_eq!(c.atoms.len(), 2),
            Chased::Unsatisfiable => panic!(),
        }
    }

    #[test]
    fn projection_split_views_equivalent_under_key() {
        // the motivating case: V6 ⋈ V7 on the key recovers Family
        let joined = q("Q(N, Ty) :- Family(F, N, T1), Family(F, N2, Ty)");
        let single = q("Q(N, Ty) :- Family(F, N, Ty)");
        assert!(!equivalent(&joined, &single), "not equivalent without keys");
        assert!(equivalent_under(&joined, &single, &family_key()));
    }

    #[test]
    fn containment_direction_still_strict() {
        // selection still matters even with keys
        let sel = q("Q(N) :- Family(F, N, \"gpcr\")");
        let all = q("Q(N) :- Family(F, N, Ty)");
        assert!(is_contained_in_under(&sel, &all, &family_key()));
        assert!(!is_contained_in_under(&all, &sel, &family_key()));
    }

    #[test]
    fn composite_keys() {
        let deps = Dependencies::none().with_key("FC", vec![0, 1]);
        // same (FID,PID) pair: atoms merge (no other columns, so
        // merge only dedups)
        let query = q("Q(F) :- FC(F, P), FC(F, P)");
        match chase_keys(&query, &deps) {
            Chased::Query(c) => assert_eq!(c.atoms.len(), 1),
            Chased::Unsatisfiable => panic!(),
        }
        // different second key component: no merge
        let query2 = q("Q(F) :- FC(F, P1), FC(F, P2)");
        match chase_keys(&query2, &deps) {
            Chased::Query(c) => assert_eq!(c.atoms.len(), 2),
            Chased::Unsatisfiable => panic!(),
        }
    }

    #[test]
    fn chase_cascades() {
        // merging on F makes the T positions equal, enabling a
        // second merge over relation S keyed on its first column
        let deps = Dependencies::none()
            .with_key("Family", vec![0])
            .with_key("S", vec![0]);
        let query = q("Q(X, Y) :- Family(F, N, T1), Family(F, N2, T2), S(T1, X), S(T2, Y)");
        match chase_keys(&query, &deps) {
            Chased::Query(c) => {
                assert_eq!(c.atoms.len(), 2); // one Family, one S
                                              // X and Y collapsed to the same variable
                assert_eq!(c.head[0], c.head[1]);
            }
            Chased::Unsatisfiable => panic!(),
        }
    }

    #[test]
    fn dependencies_from_catalog() {
        use fgc_relation::schema::RelationSchema;
        use fgc_relation::{Catalog, DataType};
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::with_names(
                "Family",
                &[("FID", DataType::Str), ("FName", DataType::Str)],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(RelationSchema::with_names("MetaData", &[("T", DataType::Str)], &[]).unwrap())
            .unwrap();
        let deps = Dependencies::from_catalog(&cat);
        assert_eq!(deps.key_of("Family"), Some(&[0][..]));
        assert_eq!(deps.key_of("MetaData"), None);
    }
}
