//! Substitutions over query variables.

use crate::ast::{Atom, Comparison, ConjunctiveQuery, Term};
use std::collections::HashMap;

/// A substitution: variable name → replacement term.
pub type Substitution = HashMap<String, Term>;

/// Apply a substitution to a term.
pub fn apply_term(s: &Substitution, t: &Term) -> Term {
    match t {
        Term::Var(v) => s.get(v).cloned().unwrap_or_else(|| t.clone()),
        Term::Const(_) => t.clone(),
    }
}

/// Apply a substitution to an atom.
pub fn apply_atom(s: &Substitution, a: &Atom) -> Atom {
    Atom {
        relation: a.relation.clone(),
        terms: a.terms.iter().map(|t| apply_term(s, t)).collect(),
    }
}

/// Apply a substitution to a comparison.
pub fn apply_comparison(s: &Substitution, c: &Comparison) -> Comparison {
    Comparison {
        left: apply_term(s, &c.left),
        op: c.op,
        right: apply_term(s, &c.right),
    }
}

/// Apply a substitution to a whole query (head, atoms, comparisons).
/// λ-parameters are *not* rewritten — callers that substitute
/// parameters clear or rename them explicitly.
pub fn apply_query(s: &Substitution, q: &ConjunctiveQuery) -> ConjunctiveQuery {
    ConjunctiveQuery {
        name: q.name.clone(),
        params: q.params.clone(),
        head: q.head.iter().map(|t| apply_term(s, t)).collect(),
        atoms: q.atoms.iter().map(|a| apply_atom(s, a)).collect(),
        comparisons: q
            .comparisons
            .iter()
            .map(|c| apply_comparison(s, c))
            .collect(),
    }
}

/// Compose substitutions: `compose(s1, s2)` applies `s1` first, then
/// `s2` (i.e. the result maps `v` to `s2(s1(v))`, and includes
/// bindings of `s2` for variables not bound by `s1`).
pub fn compose(s1: &Substitution, s2: &Substitution) -> Substitution {
    let mut out: Substitution = s1
        .iter()
        .map(|(v, t)| (v.clone(), apply_term(s2, t)))
        .collect();
    for (v, t) in s2 {
        out.entry(v.clone()).or_insert_with(|| t.clone());
    }
    out
}

/// Unify two terms under an existing substitution, extending it.
/// Returns `false` (leaving `s` possibly extended with consistent
/// bindings) when the terms cannot be unified.
///
/// Variables are resolved through `s` (path compression is not
/// needed at our term depths — terms are variables or constants).
pub fn unify_terms(s: &mut Substitution, a: &Term, b: &Term) -> bool {
    let ra = resolve(s, a);
    let rb = resolve(s, b);
    match (&ra, &rb) {
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Var(v), t) | (t, Term::Var(v)) => {
            if let Term::Var(w) = t {
                if w == v {
                    return true;
                }
            }
            s.insert(v.clone(), t.clone());
            true
        }
    }
}

/// Resolve a term through the substitution until fixpoint.
pub fn resolve(s: &Substitution, t: &Term) -> Term {
    let mut cur = t.clone();
    let mut steps = 0;
    while let Term::Var(v) = &cur {
        match s.get(v) {
            Some(next) if next != &cur => {
                cur = next.clone();
                steps += 1;
                // cycle guard: substitutions built via unify_terms are
                // acyclic, but stay defensive
                if steps > s.len() + 1 {
                    break;
                }
            }
            _ => break,
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CompOp;
    use fgc_relation::Value;

    fn s(pairs: &[(&str, Term)]) -> Substitution {
        pairs
            .iter()
            .map(|(v, t)| (v.to_string(), t.clone()))
            .collect()
    }

    #[test]
    fn apply_replaces_variables() {
        let sub = s(&[("X", Term::val("11"))]);
        let a = Atom::new("R", vec![Term::var("X"), Term::var("Y")]);
        let applied = apply_atom(&sub, &a);
        assert_eq!(applied.terms, vec![Term::val("11"), Term::var("Y")]);
    }

    #[test]
    fn apply_query_touches_all_parts() {
        let sub = s(&[("X", Term::var("Z"))]);
        let q = ConjunctiveQuery::new(
            "Q",
            vec![Term::var("X")],
            vec![Atom::new("R", vec![Term::var("X")])],
        )
        .with_comparisons(vec![Comparison::new(
            Term::var("X"),
            CompOp::Ne,
            Term::val(0),
        )]);
        let applied = apply_query(&sub, &q);
        assert_eq!(applied.head, vec![Term::var("Z")]);
        assert_eq!(applied.atoms[0].terms, vec![Term::var("Z")]);
        assert_eq!(applied.comparisons[0].left, Term::var("Z"));
    }

    #[test]
    fn compose_applies_left_then_right() {
        let s1 = s(&[("X", Term::var("Y"))]);
        let s2 = s(&[("Y", Term::val(1)), ("Z", Term::val(2))]);
        let c = compose(&s1, &s2);
        assert_eq!(apply_term(&c, &Term::var("X")), Term::val(1));
        assert_eq!(apply_term(&c, &Term::var("Z")), Term::val(2));
    }

    #[test]
    fn unify_var_with_const() {
        let mut sub = Substitution::new();
        assert!(unify_terms(&mut sub, &Term::var("X"), &Term::val("a")));
        assert_eq!(resolve(&sub, &Term::var("X")), Term::val("a"));
    }

    #[test]
    fn unify_conflicting_constants_fails() {
        let mut sub = Substitution::new();
        assert!(unify_terms(&mut sub, &Term::var("X"), &Term::val("a")));
        assert!(!unify_terms(&mut sub, &Term::var("X"), &Term::val("b")));
    }

    #[test]
    fn unify_chains_variables() {
        let mut sub = Substitution::new();
        assert!(unify_terms(&mut sub, &Term::var("X"), &Term::var("Y")));
        assert!(unify_terms(&mut sub, &Term::var("Y"), &Term::val(7)));
        assert_eq!(resolve(&sub, &Term::var("X")), Term::val(7));
    }

    #[test]
    fn unify_same_var_is_true_without_binding() {
        let mut sub = Substitution::new();
        assert!(unify_terms(&mut sub, &Term::var("X"), &Term::var("X")));
        assert!(sub.is_empty());
    }

    #[test]
    fn resolve_constant_is_identity() {
        let sub = Substitution::new();
        assert_eq!(
            resolve(&sub, &Term::val(true)),
            Term::Const(Value::Bool(true))
        );
    }
}
