//! Safety (range restriction) and schema checks for queries.

use crate::ast::{CompOp, ConjunctiveQuery, Term};
use crate::error::{QueryError, Result};
use fgc_relation::schema::Catalog;
use std::collections::BTreeSet;

/// Check that a query is *safe* (range-restricted):
///
/// * every head variable, every λ-parameter, and every variable used
///   in a comparison must be *bound*: it must occur in a relational
///   atom, or be connected to a bound variable or a constant through
///   a chain of equality comparisons;
/// * λ-parameters must occur in the query at all (Def. 2.1's `X ⊆ Y`
///   for views; for citation queries, `X` must appear in `Q'`).
pub fn check_safety(q: &ConjunctiveQuery) -> Result<()> {
    let mut bound: BTreeSet<&str> = q.body_vars();
    // propagate boundness through equality comparisons
    loop {
        let mut changed = false;
        for c in &q.comparisons {
            if c.op != CompOp::Eq {
                continue;
            }
            match (&c.left, &c.right) {
                (Term::Var(v), Term::Const(_)) | (Term::Const(_), Term::Var(v))
                    if bound.insert(v.as_str()) =>
                {
                    changed = true;
                }
                (Term::Var(a), Term::Var(b)) => {
                    if bound.contains(a.as_str()) && bound.insert(b.as_str()) {
                        changed = true;
                    }
                    if bound.contains(b.as_str()) && bound.insert(a.as_str()) {
                        changed = true;
                    }
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }
    for t in &q.head {
        if let Term::Var(v) = t {
            if !bound.contains(v.as_str()) {
                return Err(QueryError::Unsafe {
                    query: q.name.clone(),
                    variable: v.clone(),
                    reason: "appears in the head but is not range-restricted".into(),
                });
            }
        }
    }
    for p in &q.params {
        if !bound.contains(p.as_str()) {
            return Err(QueryError::Unsafe {
                query: q.name.clone(),
                variable: p.clone(),
                reason: "is a lambda parameter but does not occur in the body".into(),
            });
        }
    }
    for c in &q.comparisons {
        for v in c.vars() {
            if !bound.contains(v) {
                return Err(QueryError::Unsafe {
                    query: q.name.clone(),
                    variable: v.to_string(),
                    reason: "appears in a comparison but is not range-restricted".into(),
                });
            }
        }
    }
    Ok(())
}

/// Check every atom against the catalog: the relation must exist and
/// the atom arity must match the schema.
pub fn check_against_catalog(q: &ConjunctiveQuery, catalog: &Catalog) -> Result<()> {
    for a in &q.atoms {
        let schema = catalog.get(&a.relation)?;
        if schema.arity() != a.terms.len() {
            return Err(QueryError::AtomArity {
                relation: a.relation.clone(),
                expected: schema.arity(),
                actual: a.terms.len(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use fgc_relation::schema::RelationSchema;
    use fgc_relation::DataType;

    #[test]
    fn safe_query_passes() {
        let q = parse_query("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\"").unwrap();
        check_safety(&q).unwrap();
    }

    #[test]
    fn head_var_not_in_body_fails() {
        let q = parse_query("Q(X) :- R(Y)").unwrap();
        let err = check_safety(&q).unwrap_err();
        assert!(matches!(err, QueryError::Unsafe { variable, .. } if variable == "X"));
    }

    #[test]
    fn head_var_bound_by_equality_chain_passes() {
        let q = parse_query("Q(X) :- R(Y), X = Z, Z = Y").unwrap();
        check_safety(&q).unwrap();
    }

    #[test]
    fn head_var_bound_by_constant_equality_passes() {
        let q = parse_query("Q(X) :- R(Y), X = \"c\"").unwrap();
        check_safety(&q).unwrap();
    }

    #[test]
    fn comparison_var_unbound_fails() {
        let q = parse_query("Q(Y) :- R(Y), X < 3").unwrap();
        let err = check_safety(&q).unwrap_err();
        assert!(matches!(err, QueryError::Unsafe { variable, .. } if variable == "X"));
    }

    #[test]
    fn inequality_does_not_bind() {
        let q = parse_query("Q(X) :- R(Y), X != Y").unwrap();
        assert!(check_safety(&q).is_err());
    }

    #[test]
    fn param_must_occur() {
        let q = parse_query("lambda P. V(X) :- R(X)").unwrap();
        let err = check_safety(&q).unwrap_err();
        assert!(matches!(err, QueryError::Unsafe { variable, .. } if variable == "P"));
    }

    #[test]
    fn catalog_check_validates_arity() {
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::with_names(
                "Family",
                &[
                    ("FID", DataType::Str),
                    ("FName", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        let good = parse_query("Q(F) :- Family(F, N, Ty)").unwrap();
        check_against_catalog(&good, &cat).unwrap();
        let bad_arity = parse_query("Q(F) :- Family(F, N)").unwrap();
        assert!(matches!(
            check_against_catalog(&bad_arity, &cat).unwrap_err(),
            QueryError::AtomArity { .. }
        ));
        let bad_rel = parse_query("Q(F) :- Nope(F)").unwrap();
        assert!(matches!(
            check_against_catalog(&bad_rel, &cat).unwrap_err(),
            QueryError::Relation(_)
        ));
    }
}
