//! # fgc-query — conjunctive queries: AST, parsing, evaluation,
//! containment
//!
//! The query substrate for the `fgcite` workspace (reproduction of
//! *"A Model for Fine-Grained Data Citation"*, CIDR 2017). The paper
//! works "in a relational setting with queries and views expressed as
//! Conjunctive Queries":
//!
//! * [`ast`] — terms, atoms, comparison predicates, and (possibly
//!   λ-parameterized) conjunctive queries (Definition 2.1);
//! * [`parser`] — the Datalog-style syntax used throughout the paper;
//! * [`sql`] — an SPJ SQL front-end translating to CQs;
//! * [`safety`] — range restriction and schema checks;
//! * [`eval`] — backtracking evaluation: plain, grouped-by-output
//!   bindings (Def. 3.2), and semiring-annotated (§3.1);
//! * [`sharded`] — shard routing ([`ShardRouter`]) and the same three
//!   evaluations over a horizontally partitioned
//!   [`ShardedDatabase`](fgc_relation::sharded::ShardedDatabase),
//!   byte-compatible with the unsharded evaluator;
//! * [`containment`] — homomorphism-based containment/equivalence
//!   (needed by Def. 2.2 rewriting validity and Ex. 3.8 view
//!   inclusion);
//! * [`chase`] — the chase with key dependencies: equivalence over
//!   key-respecting databases, which validates rewritings that join
//!   views on declared keys;
//! * [`mod@minimize`] — CQ cores (Def. 2.2's non-redundancy);
//! * [`mod@reference`] — a brute-force oracle evaluator for differential
//!   testing of the optimized engine.

#![warn(missing_docs)]

pub mod ast;
pub mod chase;
pub mod containment;
pub mod error;
pub mod eval;
pub mod minimize;
pub mod parser;
pub mod plan;
pub mod reference;
pub mod safety;
pub mod sharded;
pub mod sql;
pub mod subst;

pub use ast::{Atom, CompOp, Comparison, ConjunctiveQuery, Term};
pub use chase::{chase_keys, equivalent_under, is_contained_in_under, Chased, Dependencies};
pub use containment::{equivalent, is_contained_in, normalize, Normalized};
pub use error::{QueryError, Result};
pub use eval::{
    count_bindings, evaluate, evaluate_annotated, evaluate_annotated_plan_with, evaluate_grouped,
    evaluate_grouped_plan_with, evaluate_grouped_with, evaluate_plan_with, evaluate_with, Binding,
    EvalOptions,
};
#[allow(deprecated)]
pub use eval::{
    evaluate_annotated_interpreted, evaluate_grouped_interpreted, evaluate_interpreted,
    evaluate_interpreted_with,
};
pub use minimize::{is_minimal, minimize};
pub use parser::{parse_program, parse_query};
pub use plan::QueryPlan;
pub use reference::reference_evaluate;
pub use safety::{check_against_catalog, check_safety};
pub use sharded::{
    evaluate_annotated_sharded, evaluate_annotated_sharded_compiled, evaluate_grouped_sharded,
    evaluate_grouped_sharded_compiled, evaluate_grouped_sharded_with,
    evaluate_grouped_sharded_with_plan, evaluate_sharded, evaluate_sharded_compiled,
    evaluate_sharded_with, evaluate_sharded_with_plan, lead_fragment_answers,
    lead_fragment_bindings, RoutePlan, ShardRouter, ShardSet,
};
pub use sql::parse_sql;
pub use subst::Substitution;
