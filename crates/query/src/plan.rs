//! Compiled query plans: compile-once, execute-many evaluation.
//!
//! The seed evaluator in [`crate::eval`] interprets a
//! [`ConjunctiveQuery`] from scratch on every call: bindings live in
//! a `HashMap<String, Value>` that clones the variable *name* on
//! every insert, the greedy atom order is recomputed at every
//! recursion step, and safety/catalog validation re-runs per
//! evaluation. [`QueryPlan`] hoists all of that to *plan time*:
//!
//! * variables are resolved to dense [`Slot`]s (`u16`), so a binding
//!   becomes a flat `Vec<Option<Value>>` frame — no hashing, no name
//!   clones, O(1) bind/check/unbind;
//! * the greedy atom order (most-bound atom first, smaller relation
//!   as tie-break) is fixed once. It is a pure function of the query
//!   and the per-atom relation sizes — which variables are bound
//!   after k join steps never depends on the data — so freezing it
//!   is exactly equivalent to the interpreter's per-step choice;
//! * each ordered atom step carries a precomputed per-column op
//!   ([`ColOp`]): match a constant, check an already-bound slot, or
//!   bind a free slot — plus the secondary-index probe column chosen
//!   at plan time;
//! * comparisons are compiled to slot form and scheduled at the
//!   first join depth where both sides are bound (the same point the
//!   interpreter would first apply them);
//! * safety and catalog validation run once, at compile time.
//!
//! Execution enumerates **exactly the same bindings in exactly the
//! same order** as the interpreter — first-derivation output order,
//! grouped binding order, and semiring accumulation order all
//! coincide, so citations (including provenance polynomials and
//! global row ids) are byte-identical. `tests/plan_equivalence.rs`
//! holds that bar differentially against the retained interpreter.
//!
//! A plan compiled against a database remains valid for any store
//! presenting the same catalog and per-relation (global) sizes — in
//! particular one plan is reused across all shard fragments of a
//! routed query, because [`AtomView`]s report *global* relation
//! sizes to the planner.

use crate::ast::{CompOp, Comparison, ConjunctiveQuery, Term};
use crate::error::{QueryError, Result};
use crate::eval::{AtomView, Binding, EvalOptions};
use crate::safety::{check_against_catalog, check_safety};
use fgc_relation::sharded::ShardedDatabase;
use fgc_relation::{Database, Tuple, Value};
use std::collections::HashMap;

/// A dense variable slot. Queries are small; `u16` keeps the frame
/// ops compact.
pub type Slot = u16;

/// A runtime binding frame: one entry per variable slot, `None`
/// until the slot is bound.
pub type Frame = [Option<Value>];

/// Row provenance reported by plan execution: `(original atom index,
/// relation name, global row id)` — same contract as
/// [`crate::eval::MatchedRows`], borrowing relation names from the
/// plan instead of the query.
pub type PlanMatchedRows<'p> = Vec<(usize, &'p str, usize)>;

/// What one column of an ordered atom step does against a candidate
/// row.
#[derive(Debug, Clone, PartialEq)]
enum ColOp {
    /// The column must equal this constant.
    Const(Value),
    /// The column must equal the value already in this slot (bound
    /// by a seed, an earlier atom, or an earlier column of the same
    /// atom).
    Check(Slot),
    /// First occurrence: bind the slot to the column value.
    Bind(Slot),
}

/// A value source known at plan time: a constant or a bound slot.
#[derive(Debug, Clone, PartialEq)]
enum ValueRef {
    Const(Value),
    Slot(Slot),
}

/// One atom of the join, in execution order.
#[derive(Debug, Clone)]
struct AtomStep {
    /// Index of the atom in the *original* query (and in the views
    /// slice handed to the executor).
    atom: usize,
    /// Relation name (owned, so [`PlanMatchedRows`] can borrow from
    /// the plan).
    relation: String,
    /// Secondary-index probe chosen at plan time: the first column
    /// whose value is known when this step runs. Falls back to a
    /// scan at runtime when the store has no index on that column.
    probe: Option<(usize, ValueRef)>,
    /// Per-column ops, one per schema column.
    cols: Vec<ColOp>,
}

/// A comparison with both sides resolved to slot/constant form.
#[derive(Debug, Clone)]
struct CompiledComparison {
    left: ValueRef,
    op: CompOp,
    right: ValueRef,
}

impl CompiledComparison {
    fn holds(&self, frame: &Frame) -> bool {
        let value = |r: &ValueRef| -> Option<Value> {
            match r {
                ValueRef::Const(v) => Some(v.clone()),
                ValueRef::Slot(s) => frame[*s as usize].clone(),
            }
        };
        match (value(&self.left), value(&self.right)) {
            (Some(l), Some(r)) => self.op.eval(&l, &r),
            // Scheduled only at depths where both sides are bound;
            // an unbound side would be a planner bug. The
            // interpreter skips comparisons it cannot resolve, so
            // mirror that (filter nothing) rather than panic.
            _ => {
                debug_assert!(false, "comparison scheduled before its slots were bound");
                true
            }
        }
    }
}

/// One head position: a bound slot or a constant.
#[derive(Debug, Clone)]
enum HeadSource {
    Slot(Slot),
    Const(Value),
}

/// A compiled, reusable evaluation plan for one conjunctive query.
///
/// Build with [`QueryPlan::compile`] (unsharded store) or
/// [`QueryPlan::compile_sharded`]; execute through
/// [`crate::evaluate_plan_with`] and friends, or the engine's plan
/// cache. Compilation runs the safety and catalog checks the
/// interpreter used to repeat per evaluation.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Slot → variable name (for the [`Binding`] conversion).
    var_names: Vec<String>,
    /// Relation name per atom, in *original* atom order (the views
    /// slice the executor receives uses this order).
    atom_relations: Vec<String>,
    /// Atoms in the frozen greedy execution order.
    steps: Vec<AtomStep>,
    /// `checks[d]` — comparisons first fully bound after `d` join
    /// steps (`checks[0]` holds seed-only and constant-constant
    /// comparisons). Length is `steps.len() + 1`.
    checks: Vec<Vec<CompiledComparison>>,
    /// Slot assignments from `Var = Const` equality comparisons,
    /// applied before enumeration starts.
    seeds: Vec<(Slot, Value)>,
    /// Head projection.
    head: Vec<HeadSource>,
    /// Contradictory equality selections: the result is empty, no
    /// enumeration runs (the interpreter short-circuits the same
    /// way).
    unsatisfiable: bool,
}

impl QueryPlan {
    /// Compile `q` against an unsharded database: safety check,
    /// catalog check, then slot assignment and join ordering from
    /// the database's relation sizes. Error order matches the
    /// interpreter (`Unsafe` before catalog errors).
    pub fn compile(q: &ConjunctiveQuery, db: &Database) -> Result<QueryPlan> {
        check_safety(q)?;
        check_against_catalog(q, db.catalog())?;
        let sizes: Vec<usize> = q
            .atoms
            .iter()
            .map(|a| db.relation(&a.relation).map(|r| r.len()))
            .collect::<std::result::Result<_, _>>()?;
        Self::compile_ordered(q, &sizes)
    }

    /// Compile `q` against a sharded store. Sizes are **global**
    /// relation sizes (all shards), so the plan is identical to the
    /// one the unsharded database would produce — which is what lets
    /// one plan serve every routing of the query.
    pub fn compile_sharded(q: &ConjunctiveQuery, db: &ShardedDatabase) -> Result<QueryPlan> {
        check_safety(q)?;
        check_against_catalog(q, db.catalog())?;
        let sizes: Vec<usize> = q
            .atoms
            .iter()
            .map(|a| db.placement(&a.relation).map(|p| p.len()))
            .collect::<std::result::Result<_, _>>()?;
        Self::compile_ordered(q, &sizes)
    }

    /// Core compilation once checks have passed; `sizes[i]` is the
    /// (global) size of atom `i`'s relation.
    fn compile_ordered(q: &ConjunctiveQuery, sizes: &[usize]) -> Result<QueryPlan> {
        // Slot assignment: all variables (atoms, comparisons, head,
        // params), in sorted order for determinism.
        let var_names: Vec<String> = q.all_vars().into_iter().map(str::to_string).collect();
        if var_names.len() > Slot::MAX as usize {
            return Err(QueryError::BudgetExceeded {
                what: "variable slots".into(),
                limit: Slot::MAX as usize,
            });
        }
        let slot_of: HashMap<&str, Slot> = var_names
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i as Slot))
            .collect();
        let slot = |v: &str| -> Slot { slot_of[v] };

        // Seed `Var = Const` equalities, exactly like the
        // interpreter: first value wins, a contradictory second
        // value empties the result, duplicates are dropped.
        let mut seeds: Vec<(Slot, Value)> = Vec::new();
        let mut seeded: HashMap<Slot, Value> = HashMap::new();
        let mut residual: Vec<Comparison> = Vec::new();
        let mut unsatisfiable = false;
        for c in &q.comparisons {
            let n = c.normalized();
            if n.op == CompOp::Eq {
                if let (Term::Var(v), Term::Const(val)) = (&n.left, &n.right) {
                    let s = slot(v);
                    match seeded.get(&s) {
                        Some(prev) if prev != val => {
                            unsatisfiable = true;
                        }
                        Some(_) => {}
                        None => {
                            seeded.insert(s, val.clone());
                            seeds.push((s, val.clone()));
                        }
                    }
                    continue;
                }
            }
            residual.push(n);
        }

        let value_ref = |t: &Term| -> ValueRef {
            match t {
                Term::Const(v) => ValueRef::Const(v.clone()),
                Term::Var(v) => ValueRef::Slot(slot(v)),
            }
        };

        // Static boundness: a term is bound at a given depth iff it
        // is a constant or its variable was seeded / bound by an
        // earlier step. This never depends on the data, which is why
        // the order and comparison schedule can be frozen.
        let mut bound = vec![false; var_names.len()];
        for (s, _) in &seeds {
            bound[*s as usize] = true;
        }
        let term_bound = |t: &Term, bound: &[bool]| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound[slot(v) as usize],
        };

        // Schedule residual comparisons: each runs at the first
        // depth where both sides are bound (residual order preserved
        // within a depth — the interpreter applies them in that
        // order too). Comparisons whose variables never bind — legal
        // when safety is satisfied through an unbound equality chain
        // — are never applied, exactly like the interpreter.
        let mut comp_scheduled = vec![false; residual.len()];
        let mut checks: Vec<Vec<CompiledComparison>> = Vec::with_capacity(q.atoms.len() + 1);
        let schedule = |scheduled: &mut [bool], bound: &[bool]| -> Vec<CompiledComparison> {
            let mut out = Vec::new();
            for (i, c) in residual.iter().enumerate() {
                if scheduled[i] || !term_bound(&c.left, bound) || !term_bound(&c.right, bound) {
                    continue;
                }
                scheduled[i] = true;
                out.push(CompiledComparison {
                    left: value_ref(&c.left),
                    op: c.op,
                    right: value_ref(&c.right),
                });
            }
            out
        };
        checks.push(schedule(&mut comp_scheduled, &bound));

        // Freeze the greedy order: most bound argument positions
        // first, then smaller relation, then the *last* qualifying
        // atom (the interpreter replaces its candidate only on a
        // strictly greater key, so ties go to the highest index).
        let mut used = vec![false; q.atoms.len()];
        let mut steps: Vec<AtomStep> = Vec::with_capacity(q.atoms.len());
        for _ in 0..q.atoms.len() {
            let mut best: Option<(usize, usize, usize)> = None;
            for (i, a) in q.atoms.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let bound_count = a.terms.iter().filter(|t| term_bound(t, &bound)).count();
                let candidate = (bound_count, usize::MAX - sizes[i], i);
                if best.is_none_or(|b| candidate > b) {
                    best = Some(candidate);
                }
            }
            let (_, _, idx) = best.expect("at least one unused atom");
            used[idx] = true;
            let atom = &q.atoms[idx];

            // Probe column: first position whose value is known at
            // step entry (before this atom binds anything).
            let probe = atom.terms.iter().enumerate().find_map(|(col, t)| match t {
                Term::Const(v) => Some((col, ValueRef::Const(v.clone()))),
                Term::Var(v) => bound[slot(v) as usize].then(|| (col, ValueRef::Slot(slot(v)))),
            });

            // Column ops; a variable repeated within the atom binds
            // at its first occurrence and checks at the rest.
            let cols = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(v) => ColOp::Const(v.clone()),
                    Term::Var(v) => {
                        let s = slot(v);
                        if bound[s as usize] {
                            ColOp::Check(s)
                        } else {
                            bound[s as usize] = true;
                            ColOp::Bind(s)
                        }
                    }
                })
                .collect();

            steps.push(AtomStep {
                atom: idx,
                relation: atom.relation.clone(),
                probe,
                cols,
            });
            checks.push(schedule(&mut comp_scheduled, &bound));
        }

        let head = q
            .head
            .iter()
            .map(|t| match t {
                Term::Const(v) => HeadSource::Const(v.clone()),
                Term::Var(v) => HeadSource::Slot(slot(v)),
            })
            .collect();

        Ok(QueryPlan {
            var_names,
            atom_relations: q.atoms.iter().map(|a| a.relation.clone()).collect(),
            steps,
            checks,
            seeds,
            head,
            unsatisfiable,
        })
    }

    /// Number of variable slots in the frame.
    pub fn num_slots(&self) -> usize {
        self.var_names.len()
    }

    /// Number of atoms (= join steps).
    pub fn num_atoms(&self) -> usize {
        self.steps.len()
    }

    /// Relation names in original atom order — what the executor's
    /// views slice must line up with.
    pub fn atom_relations(&self) -> &[String] {
        &self.atom_relations
    }

    /// Whether compilation proved the result empty (contradictory
    /// equality selections).
    pub fn is_unsatisfiable(&self) -> bool {
        self.unsatisfiable
    }

    /// The frozen join order as original atom indices.
    pub fn join_order(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.atom).collect()
    }

    /// The thin slot → name conversion keeping [`Binding`] in the
    /// public API: bound slots become name-keyed entries, unbound
    /// slots are omitted (matching the interpreter, which never
    /// inserts an unbound variable).
    pub fn binding(&self, frame: &Frame) -> Binding {
        self.var_names
            .iter()
            .zip(frame)
            .filter_map(|(name, v)| v.as_ref().map(|v| (name.clone(), v.clone())))
            .collect()
    }

    /// Project the head under a frame. Head variables left unbound
    /// (possible for queries made safe by unbound equality chains)
    /// project as `Null`, like the interpreter.
    pub fn project_head(&self, frame: &Frame) -> Tuple {
        self.head
            .iter()
            .map(|h| match h {
                HeadSource::Const(v) => v.clone(),
                HeadSource::Slot(s) => frame[*s as usize].clone().unwrap_or(Value::Null),
            })
            .collect()
    }

    /// Build whole-relation views for executing this plan against an
    /// unsharded database (atom order = original query order).
    pub(crate) fn whole_views<'a>(&self, db: &'a Database) -> Result<Vec<AtomView<'a>>> {
        self.atom_relations
            .iter()
            .map(|r| db.relation(r).map(AtomView::Whole))
            .collect::<std::result::Result<_, _>>()
            .map_err(Into::into)
    }
}

/// Candidate row positions for one step: a borrowed index posting
/// list, a merged (scatter) list, or a full scan.
pub(crate) enum Candidates<'a> {
    Borrowed(&'a [usize]),
    Owned(Vec<usize>),
    Scan(usize),
}

/// Plan execution state. The frame, provenance stack, and per-depth
/// scratch buffers are allocated once per evaluation and reused
/// across the whole enumeration.
struct Exec<'p, 'v> {
    plan: &'p QueryPlan,
    views: &'v [AtomView<'v>],
    frame: Vec<Option<Value>>,
    matched: PlanMatchedRows<'p>,
    /// Per-depth scratch: slots bound by the current row of that
    /// depth's atom (rolled back on mismatch/backtrack).
    scratch: Vec<Vec<Slot>>,
    budget: usize,
    count: usize,
}

impl<'p, 'v> Exec<'p, 'v> {
    fn walk(
        &mut self,
        depth: usize,
        sink: &mut dyn FnMut(&Frame, &PlanMatchedRows<'p>) -> Result<()>,
    ) -> Result<()> {
        // Copy the long-lived references out of `self` so posting
        // lists borrowed from the store do not pin `self` immutably
        // across the recursive calls below.
        let plan = self.plan;
        let views = self.views;
        for c in &plan.checks[depth] {
            if !c.holds(&self.frame) {
                return Ok(());
            }
        }
        if depth == plan.steps.len() {
            if self.budget == 0 {
                return Err(QueryError::BudgetExceeded {
                    what: "bindings".into(),
                    limit: 0,
                });
            }
            self.budget -= 1;
            self.count += 1;
            return sink(&self.frame, &self.matched);
        }

        let step = &plan.steps[depth];
        let view = &views[step.atom];
        let candidates = match &step.probe {
            Some((col, source)) => {
                let value = match source {
                    ValueRef::Const(v) => Some(v.clone()),
                    ValueRef::Slot(s) => self.frame[*s as usize].clone(),
                };
                match value.and_then(|v| view.probe_positions(*col, &v)) {
                    Some(positions) => positions,
                    None => Candidates::Scan(view.scan_len()),
                }
            }
            None => Candidates::Scan(view.scan_len()),
        };

        match candidates {
            Candidates::Borrowed(positions) => {
                for &pos in positions {
                    self.try_row(step, view, depth, pos, sink)?;
                }
            }
            Candidates::Owned(positions) => {
                for pos in positions {
                    self.try_row(step, view, depth, pos, sink)?;
                }
            }
            Candidates::Scan(len) => {
                for pos in 0..len {
                    self.try_row(step, view, depth, pos, sink)?;
                }
            }
        }
        Ok(())
    }

    /// Match one candidate row against a step: apply the per-column
    /// ops, recurse on success, roll the frame back either way.
    fn try_row(
        &mut self,
        step: &'p AtomStep,
        view: &AtomView<'v>,
        depth: usize,
        pos: usize,
        sink: &mut dyn FnMut(&Frame, &PlanMatchedRows<'p>) -> Result<()>,
    ) -> Result<()> {
        let row = view.row(pos);
        let mut newly = std::mem::take(&mut self.scratch[depth]);
        for (col, op) in step.cols.iter().enumerate() {
            let ok = match op {
                ColOp::Const(c) => &row[col] == c,
                ColOp::Check(s) => self.frame[*s as usize].as_ref() == Some(&row[col]),
                ColOp::Bind(s) => {
                    self.frame[*s as usize] = Some(row[col].clone());
                    newly.push(*s);
                    true
                }
            };
            if !ok {
                for s in newly.drain(..) {
                    self.frame[s as usize] = None;
                }
                self.scratch[depth] = newly;
                return Ok(());
            }
        }
        self.matched
            .push((step.atom, step.relation.as_str(), view.global_id(pos)));
        let r = self.walk(depth + 1, sink);
        self.matched.pop();
        for s in newly.drain(..) {
            self.frame[s as usize] = None;
        }
        self.scratch[depth] = newly;
        r
    }
}

/// Execute a plan over pre-built views (original atom order),
/// calling `sink` once per complete binding frame. Returns the
/// number of bindings enumerated — the same count, in the same
/// order, as the interpreter's [`crate::eval`] core.
pub(crate) fn for_each_frame<'p>(
    plan: &'p QueryPlan,
    views: &[AtomView<'_>],
    options: EvalOptions,
    sink: &mut dyn FnMut(&Frame, &PlanMatchedRows<'p>) -> Result<()>,
) -> Result<usize> {
    if plan.unsatisfiable {
        return Ok(0);
    }
    let mut exec = Exec {
        plan,
        views,
        frame: vec![None; plan.var_names.len()],
        matched: Vec::with_capacity(plan.steps.len()),
        scratch: vec![Vec::new(); plan.steps.len()],
        budget: options.max_bindings,
        count: 0,
    };
    for (s, v) in &plan.seeds {
        exec.frame[*s as usize] = Some(v.clone());
    }
    exec.walk(0, sink)?;
    Ok(exec.count)
}

impl AtomView<'_> {
    /// Index probe that borrows the posting list when the store
    /// allows it (single fragment), merging only in the scatter
    /// case. `None` when any underlying fragment lacks the index.
    pub(crate) fn probe_positions(&self, column: usize, value: &Value) -> Option<Candidates<'_>> {
        match self {
            AtomView::Whole(rel) => rel.probe(column, value).map(Candidates::Borrowed),
            // fragment-local positions are already ascending in the
            // global order
            AtomView::Fragment { fragment, .. } => {
                fragment.probe(column, value).map(Candidates::Borrowed)
            }
            AtomView::Scatter {
                fragments,
                global_ids,
                ..
            } => {
                let mut merged = Vec::new();
                for (shard, fragment) in fragments.iter().enumerate() {
                    let locals = fragment.probe(column, value)?;
                    merged.extend(locals.iter().map(|&l| global_ids[shard][l]));
                }
                merged.sort_unstable();
                Some(Candidates::Owned(merged))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use fgc_relation::schema::RelationSchema;
    use fgc_relation::{tuple, DataType};

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::with_names(
                "Family",
                &[
                    ("FID", DataType::Str),
                    ("FName", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::with_names(
                "FamilyIntro",
                &[("FID", DataType::Str), ("Text", DataType::Str)],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert_all(
            "Family",
            vec![
                tuple!["11", "Calcitonin", "gpcr"],
                tuple!["12", "Orexin", "gpcr"],
                tuple!["13", "Kinase", "enzyme"],
            ],
        )
        .unwrap();
        db.insert_all(
            "FamilyIntro",
            vec![
                tuple!["11", "The calcitonin peptide family"],
                tuple!["13", "Kinases catalyse"],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn compile_validates_like_the_interpreter() {
        let db = sample_db();
        let unsafe_q = parse_query("Q(X) :- Family(F, N, Ty)").unwrap();
        assert!(matches!(
            QueryPlan::compile(&unsafe_q, &db).unwrap_err(),
            QueryError::Unsafe { .. }
        ));
        let unknown = parse_query("Q(X) :- Nope(X)").unwrap();
        assert!(QueryPlan::compile(&unknown, &db).is_err());
    }

    #[test]
    fn join_order_prefers_selective_atoms() {
        let db = sample_db();
        // the constant-selected FamilyIntro atom must run first
        let q = parse_query("Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx), F = \"11\"").unwrap();
        let plan = QueryPlan::compile(&q, &db).unwrap();
        // both atoms have the seeded F bound; the smaller relation
        // (FamilyIntro, 2 rows) wins the tie-break
        assert_eq!(plan.join_order(), vec![1, 0]);
        assert!(!plan.is_unsatisfiable());
    }

    #[test]
    fn contradictory_seeds_mark_the_plan_unsatisfiable() {
        let db = sample_db();
        let q = parse_query("Q(N) :- Family(F, N, Ty), Ty = \"a\", Ty = \"b\"").unwrap();
        let plan = QueryPlan::compile(&q, &db).unwrap();
        assert!(plan.is_unsatisfiable());
        let out = crate::evaluate_plan_with(&db, &plan, EvalOptions::default()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn binding_conversion_names_bound_slots_only() {
        let db = sample_db();
        let q = parse_query("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\"").unwrap();
        let plan = QueryPlan::compile(&q, &db).unwrap();
        let views = plan.whole_views(&db).unwrap();
        let mut bindings: Vec<Binding> = Vec::new();
        for_each_frame(&plan, &views, EvalOptions::default(), &mut |frame, _| {
            bindings.push(plan.binding(frame));
            Ok(())
        })
        .unwrap();
        assert_eq!(bindings.len(), 2);
        for b in &bindings {
            assert_eq!(b.get("Ty"), Some(&Value::str("gpcr")));
            assert!(b.contains_key("F") && b.contains_key("N"));
        }
    }

    #[test]
    fn plans_survive_many_variables() {
        let db = sample_db();
        let q = parse_query("Q(A, B, C) :- Family(A, B, C)").unwrap();
        let plan = QueryPlan::compile(&q, &db).unwrap();
        assert_eq!(plan.num_slots(), 3);
        assert_eq!(plan.num_atoms(), 1);
        assert_eq!(plan.atom_relations(), ["Family".to_string()]);
    }
}
