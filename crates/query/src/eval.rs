//! Evaluation of conjunctive queries over a [`Database`].
//!
//! The evaluator is a backtracking index-nested-loop join with a
//! greedy atom order (most-bound atom first). Three entry points:
//!
//! * [`evaluate`] — distinct output tuples (set semantics);
//! * [`evaluate_grouped`] — output tuples with *all* their bindings,
//!   the raw material for Definition 3.2's sum over bindings;
//! * [`evaluate_annotated`] — semiring-annotated evaluation: each
//!   base tuple carries an annotation, joins multiply (`·`), multiple
//!   derivations of the same output add (`+`) — §3.1 of the paper.
//!   This is the "changes ... in terms of query processing (to
//!   combine citation annotations)" the paper anticipates in §4;
//!   experiment E6 measures its overhead.

use crate::ast::{ConjunctiveQuery, Term};
use crate::error::{QueryError, Result};
use crate::plan::{for_each_frame, QueryPlan};
use crate::safety::{check_against_catalog, check_safety};
use fgc_relation::{Database, Tuple, Value};
use fgc_semiring::CommutativeSemiring;
use std::collections::HashMap;

/// A total assignment of values to the query's variables.
pub type Binding = HashMap<String, Value>;

/// Resource limits for evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Maximum number of bindings enumerated before
    /// [`QueryError::BudgetExceeded`] is raised.
    pub max_bindings: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_bindings: 10_000_000,
        }
    }
}

/// Row provenance: which row of which relation each atom matched.
/// Entries are `(atom index, relation name, row position)` — for a
/// sharded store the position is the **global** insertion rank, equal
/// to the row position the unsharded database would report.
pub type MatchedRows<'q> = Vec<(usize, &'q str, usize)>;

/// What one atom scans: the whole relation, or the routed shard
/// fragments presented in **global insertion order**. Keeping the
/// global order (and reporting global row ids) is what makes routed
/// evaluation bit-compatible with the unsharded evaluator: the same
/// bindings are enumerated in the same sequence, so first-derivation
/// output order, grouped binding order, and semiring accumulation
/// order all coincide.
/// All three variants borrow straight from the store — building a
/// view is O(shards), not O(tuples), so a routed lookup pays for the
/// fragment it scans, never for the relation it skipped.
#[derive(Debug)]
pub(crate) enum AtomView<'a> {
    /// An unsharded relation: view position = row position.
    Whole(&'a fgc_relation::Relation),
    /// One routed shard fragment: view position = local position
    /// (per-shard locals are appended in global order, so local order
    /// *is* the global order restricted to the shard).
    Fragment {
        /// The single fragment the router proved sufficient.
        fragment: &'a fgc_relation::Relation,
        /// Local position → global row id (ascending).
        global_ids: &'a [usize],
        /// Global relation size (all shards), so the greedy atom
        /// order sees the same statistics as the unsharded planner.
        planned_len: usize,
    },
    /// Fan-out over every shard: view position = global rank.
    Scatter {
        /// One fragment per shard, indexed by shard id.
        fragments: Vec<&'a fgc_relation::Relation>,
        /// Global rank → `(shard, local position)`.
        placement: &'a [(u32, u32)],
        /// Per shard: local position → global rank.
        global_ids: Vec<&'a [usize]>,
    },
}

impl AtomView<'_> {
    /// Size used by the greedy atom-order heuristic. For routed views
    /// this is the *global* relation size: the plan must not depend
    /// on how much routing pruned, or sharded and unsharded runs
    /// could pick different join orders (and different output order).
    fn planned_len(&self) -> usize {
        match self {
            AtomView::Whole(rel) => rel.len(),
            AtomView::Fragment { planned_len, .. } => *planned_len,
            AtomView::Scatter { placement, .. } => placement.len(),
        }
    }

    /// Number of rows this view actually scans.
    pub(crate) fn scan_len(&self) -> usize {
        match self {
            AtomView::Whole(rel) => rel.len(),
            AtomView::Fragment { fragment, .. } => fragment.len(),
            AtomView::Scatter { placement, .. } => placement.len(),
        }
    }

    /// The tuple at a view position.
    pub(crate) fn row(&self, pos: usize) -> &Tuple {
        match self {
            AtomView::Whole(rel) => &rel.rows()[pos],
            AtomView::Fragment { fragment, .. } => &fragment.rows()[pos],
            AtomView::Scatter {
                fragments,
                placement,
                ..
            } => {
                let (shard, local) = placement[pos];
                &fragments[shard as usize].rows()[local as usize]
            }
        }
    }

    /// The global row id at a view position (what [`MatchedRows`]
    /// reports).
    pub(crate) fn global_id(&self, pos: usize) -> usize {
        match self {
            AtomView::Whole(_) | AtomView::Scatter { .. } => pos,
            AtomView::Fragment { global_ids, .. } => global_ids[pos],
        }
    }

    /// Index probe: view positions whose `column` equals `value`, in
    /// ascending (global) order — `None` when any underlying fragment
    /// lacks the index (caller scans). Thin materializing wrapper
    /// over [`Self::probe_positions`] (the one authoritative probe
    /// implementation, in [`crate::plan`]) so the interpreter and
    /// the compiled executor can never diverge here.
    fn probe(&self, column: usize, value: &Value) -> Option<Vec<usize>> {
        use crate::plan::Candidates;
        self.probe_positions(column, value).map(|c| match c {
            Candidates::Borrowed(positions) => positions.to_vec(),
            Candidates::Owned(positions) => positions,
            Candidates::Scan(_) => unreachable!("probe_positions never returns Scan"),
        })
    }
}

/// Core enumeration of the **seed interpreter**, over pre-built atom
/// views: call `sink` once per complete binding.
///
/// The atom order is chosen greedily: at each step pick the atom with
/// the most already-bound argument positions (constants count as
/// bound), breaking ties by smaller relation. Comparisons run as soon
/// as both sides are bound. Safety and catalog checks are the
/// caller's responsibility.
///
/// The serving paths no longer run this; [`crate::plan`] compiles
/// the same choices once and executes them over slot frames. This
/// interpreter is the ground truth the compiled executor is diffed
/// against (`tests/plan_equivalence.rs`).
pub(crate) fn for_each_binding_views<'q>(
    q: &'q ConjunctiveQuery,
    relations: &[AtomView<'_>],
    options: EvalOptions,
    sink: &mut dyn FnMut(&Binding, &MatchedRows<'q>) -> Result<()>,
) -> Result<usize> {
    let mut binding: Binding = Binding::new();
    // Seed bindings from `Var = Const` equality comparisons so they
    // act as selections, and collect residual comparisons.
    let mut residual = Vec::new();
    for c in &q.comparisons {
        let n = c.normalized();
        if n.op == crate::ast::CompOp::Eq {
            if let (Term::Var(v), Term::Const(val)) = (&n.left, &n.right) {
                if let Some(prev) = binding.get(v.as_str()) {
                    if prev != val {
                        return Ok(0); // contradictory selections
                    }
                } else {
                    binding.insert(v.clone(), val.clone());
                }
                continue;
            }
        }
        residual.push(n);
    }

    let mut used = vec![false; q.atoms.len()];
    let mut comp_done = vec![false; residual.len()];
    let mut matched: MatchedRows<'q> = Vec::with_capacity(q.atoms.len());
    let mut budget = options.max_bindings;

    fn resolve_term(binding: &Binding, t: &Term) -> Option<Value> {
        match t {
            Term::Const(v) => Some(v.clone()),
            Term::Var(v) => binding.get(v.as_str()).cloned(),
        }
    }

    // Recursive walker. Implemented with an explicit helper fn to keep
    // the borrow checker happy about the shared state.
    #[allow(clippy::too_many_arguments)]
    fn walk<'q>(
        q: &'q ConjunctiveQuery,
        relations: &[AtomView<'_>],
        residual: &[crate::ast::Comparison],
        binding: &mut Binding,
        used: &mut [bool],
        comp_done: &mut [bool],
        matched: &mut MatchedRows<'q>,
        budget: &mut usize,
        sink: &mut dyn FnMut(&Binding, &MatchedRows<'q>) -> Result<()>,
    ) -> Result<()> {
        // Apply every not-yet-applied comparison whose terms are bound.
        let mut applied_here = Vec::new();
        for (i, c) in residual.iter().enumerate() {
            if comp_done[i] {
                continue;
            }
            let l = resolve_term(binding, &c.left);
            let r = resolve_term(binding, &c.right);
            if let (Some(l), Some(r)) = (l, r) {
                comp_done[i] = true;
                applied_here.push(i);
                if !c.op.eval(&l, &r) {
                    for j in applied_here {
                        comp_done[j] = false;
                    }
                    return Ok(());
                }
            }
        }

        // All atoms used: emit the binding.
        if used.iter().all(|u| *u) {
            if *budget == 0 {
                return Err(QueryError::BudgetExceeded {
                    what: "bindings".into(),
                    limit: 0,
                });
            }
            *budget -= 1;
            let result = sink(binding, matched);
            for j in applied_here {
                comp_done[j] = false;
            }
            return result;
        }

        // Greedy choice: atom with most bound positions.
        let mut best: Option<(usize, usize, usize)> = None; // (bound count, -size, idx)
        for (i, a) in q.atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let bound = a
                .terms
                .iter()
                .filter(|t| resolve_term(binding, t).is_some())
                .count();
            let size = relations[i].planned_len();
            let candidate = (bound, usize::MAX - size, i);
            if best.is_none_or(|b| candidate > b) {
                best = Some(candidate);
            }
        }
        let (_, _, idx) = best.expect("at least one unused atom");
        let atom = &q.atoms[idx];
        let rel = &relations[idx];
        used[idx] = true;

        // Candidate rows: probe a secondary index on the first bound
        // column if available, otherwise scan.
        let bound_col = atom
            .terms
            .iter()
            .enumerate()
            .find_map(|(col, t)| resolve_term(binding, t).map(|v| (col, v)));
        let positions: Vec<usize> = match &bound_col {
            Some((col, v)) => match rel.probe(*col, v) {
                Some(p) => p,
                None => (0..rel.scan_len()).collect(),
            },
            None => (0..rel.scan_len()).collect(),
        };

        'rows: for pos in positions {
            let row = rel.row(pos);
            // match atom terms against the row
            let mut newly_bound: Vec<&str> = Vec::new();
            for (col, t) in atom.terms.iter().enumerate() {
                match t {
                    Term::Const(c) => {
                        if &row[col] != c {
                            for v in newly_bound.drain(..) {
                                binding.remove(v);
                            }
                            continue 'rows;
                        }
                    }
                    Term::Var(v) => match binding.get(v.as_str()) {
                        Some(existing) => {
                            if existing != &row[col] {
                                for v in newly_bound.drain(..) {
                                    binding.remove(v);
                                }
                                continue 'rows;
                            }
                        }
                        None => {
                            binding.insert(v.clone(), row[col].clone());
                            newly_bound.push(v.as_str());
                        }
                    },
                }
            }
            matched.push((idx, atom.relation.as_str(), rel.global_id(pos)));
            let r = walk(
                q, relations, residual, binding, used, comp_done, matched, budget, sink,
            );
            matched.pop();
            let owned: Vec<String> = newly_bound.iter().map(|s| s.to_string()).collect();
            for v in owned {
                binding.remove(&v);
            }
            r?;
        }

        used[idx] = false;
        for j in applied_here {
            comp_done[j] = false;
        }
        Ok(())
    }

    let mut count = 0usize;
    let mut counting_sink = |b: &Binding, m: &MatchedRows<'q>| {
        count += 1;
        sink(b, m)
    };
    walk(
        q,
        relations,
        &residual,
        &mut binding,
        &mut used,
        &mut comp_done,
        &mut matched,
        &mut budget,
        &mut counting_sink,
    )?;
    Ok(count)
}

/// Project the head of `q` under a binding. Head terms must resolve
/// (guaranteed by the safety check).
fn project_head(q: &ConjunctiveQuery, binding: &Binding) -> Tuple {
    q.head
        .iter()
        .map(|t| match t {
            Term::Const(v) => v.clone(),
            Term::Var(v) => binding.get(v.as_str()).cloned().unwrap_or(Value::Null),
        })
        .collect()
}

/// How much to pre-size output containers: the bindings budget is
/// the only statically known bound on distinct outputs, capped so a
/// large default budget does not translate into a large upfront
/// allocation.
fn capacity_hint(options: EvalOptions) -> usize {
    options.max_bindings.min(1024)
}

/// Distinct-output collection over a compiled plan and pre-built
/// views (shared by the whole-database and sharded entry points).
/// The dedup map *owns* each distinct tuple — nothing is cloned per
/// emission — and first-derivation order is restored from insertion
/// ranks at the end.
pub(crate) fn evaluate_frames(
    plan: &QueryPlan,
    views: &[AtomView<'_>],
    options: EvalOptions,
) -> Result<Vec<Tuple>> {
    let mut seen: HashMap<Tuple, usize> = HashMap::with_capacity(capacity_hint(options));
    for_each_frame(plan, views, options, &mut |frame, _| {
        let t = plan.project_head(frame);
        let rank = seen.len();
        seen.entry(t).or_insert(rank);
        Ok(())
    })?;
    let mut out: Vec<(usize, Tuple)> = seen.into_iter().map(|(t, i)| (i, t)).collect();
    out.sort_unstable_by_key(|(i, _)| *i);
    Ok(out.into_iter().map(|(_, t)| t).collect())
}

/// Grouped-bindings collection over a compiled plan. Frames convert
/// to name-keyed [`Binding`]s only at emission — the public grouped
/// API is unchanged.
pub(crate) fn evaluate_grouped_frames(
    plan: &QueryPlan,
    views: &[AtomView<'_>],
    options: EvalOptions,
) -> Result<Vec<(Tuple, Vec<Binding>)>> {
    let mut groups: HashMap<Tuple, (usize, Vec<Binding>)> =
        HashMap::with_capacity(capacity_hint(options));
    for_each_frame(plan, views, options, &mut |frame, _| {
        let t = plan.project_head(frame);
        let rank = groups.len();
        groups
            .entry(t)
            .or_insert_with(|| (rank, Vec::new()))
            .1
            .push(plan.binding(frame));
        Ok(())
    })?;
    let mut out: Vec<(usize, Tuple, Vec<Binding>)> =
        groups.into_iter().map(|(t, (i, b))| (i, t, b)).collect();
    out.sort_unstable_by_key(|(i, _, _)| *i);
    Ok(out.into_iter().map(|(_, t, b)| (t, b)).collect())
}

/// Semiring-annotated collection over a compiled plan. Products run
/// over each binding's matched rows (by global row id), sums over the
/// bindings of one output tuple — in enumeration order, so sharded
/// and unsharded runs accumulate identically.
pub(crate) fn evaluate_annotated_frames<S, F>(
    plan: &QueryPlan,
    views: &[AtomView<'_>],
    options: EvalOptions,
    mut annotate: F,
) -> Result<Vec<(Tuple, S)>>
where
    S: CommutativeSemiring,
    F: FnMut(&str, usize) -> S,
{
    let mut acc: HashMap<Tuple, (usize, S)> = HashMap::with_capacity(capacity_hint(options));
    for_each_frame(plan, views, options, &mut |frame, matched| {
        let product = matched
            .iter()
            .fold(S::one(), |p, (_, rel, row)| p.times(&annotate(rel, *row)));
        let t = plan.project_head(frame);
        let rank = acc.len();
        match acc.entry(t) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (_, s) = e.get_mut();
                *s = s.plus(&product);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((rank, product));
            }
        }
        Ok(())
    })?;
    let mut out: Vec<(usize, Tuple, S)> = acc.into_iter().map(|(t, (i, s))| (i, t, s)).collect();
    out.sort_unstable_by_key(|(i, _, _)| *i);
    Ok(out.into_iter().map(|(_, t, s)| (t, s)).collect())
}

/// Evaluate a query, returning distinct output tuples (set
/// semantics), in first-derivation order. Compiles a [`QueryPlan`]
/// and executes it; callers evaluating the same query repeatedly
/// should compile once (or use the engine's plan cache) and call
/// [`evaluate_plan_with`].
pub fn evaluate(db: &Database, q: &ConjunctiveQuery) -> Result<Vec<Tuple>> {
    evaluate_with(db, q, EvalOptions::default())
}

/// [`evaluate`] with explicit limits.
pub fn evaluate_with(
    db: &Database,
    q: &ConjunctiveQuery,
    options: EvalOptions,
) -> Result<Vec<Tuple>> {
    evaluate_plan_with(db, &QueryPlan::compile(q, db)?, options)
}

/// Execute a pre-compiled plan against an unsharded database.
pub fn evaluate_plan_with(
    db: &Database,
    plan: &QueryPlan,
    options: EvalOptions,
) -> Result<Vec<Tuple>> {
    evaluate_frames(plan, &plan.whole_views(db)?, options)
}

/// Evaluate and group *all* bindings by output tuple — Definition 3.2
/// needs "the set of all bindings for Q' that yield a tuple t".
pub fn evaluate_grouped(db: &Database, q: &ConjunctiveQuery) -> Result<Vec<(Tuple, Vec<Binding>)>> {
    evaluate_grouped_with(db, q, EvalOptions::default())
}

/// [`evaluate_grouped`] with explicit limits.
pub fn evaluate_grouped_with(
    db: &Database,
    q: &ConjunctiveQuery,
    options: EvalOptions,
) -> Result<Vec<(Tuple, Vec<Binding>)>> {
    evaluate_grouped_plan_with(db, &QueryPlan::compile(q, db)?, options)
}

/// [`evaluate_grouped_with`] over a pre-compiled plan.
pub fn evaluate_grouped_plan_with(
    db: &Database,
    plan: &QueryPlan,
    options: EvalOptions,
) -> Result<Vec<(Tuple, Vec<Binding>)>> {
    evaluate_grouped_frames(plan, &plan.whole_views(db)?, options)
}

/// Semiring-annotated evaluation (§3.1): `annotate(relation, row)`
/// supplies the base annotation of each tuple; per binding the atom
/// annotations are multiplied, per output tuple the binding products
/// are summed. Output order is first-derivation order.
pub fn evaluate_annotated<S, F>(
    db: &Database,
    q: &ConjunctiveQuery,
    annotate: F,
) -> Result<Vec<(Tuple, S)>>
where
    S: CommutativeSemiring,
    F: FnMut(&str, usize) -> S,
{
    evaluate_annotated_plan_with(
        db,
        &QueryPlan::compile(q, db)?,
        EvalOptions::default(),
        annotate,
    )
}

/// [`evaluate_annotated`] over a pre-compiled plan.
pub fn evaluate_annotated_plan_with<S, F>(
    db: &Database,
    plan: &QueryPlan,
    options: EvalOptions,
    annotate: F,
) -> Result<Vec<(Tuple, S)>>
where
    S: CommutativeSemiring,
    F: FnMut(&str, usize) -> S,
{
    evaluate_annotated_frames(plan, &plan.whole_views(db)?, options, annotate)
}

/// Count bindings without materializing anything (diagnostics).
pub fn count_bindings(db: &Database, q: &ConjunctiveQuery) -> Result<usize> {
    let plan = QueryPlan::compile(q, db)?;
    for_each_frame(
        &plan,
        &plan.whole_views(db)?,
        EvalOptions::default(),
        &mut |_, _| Ok(()),
    )
}

// =====================================================================
// The seed interpreter — retained as the differential baseline
// =====================================================================

/// Whole-relation views for an unsharded database (checks first, so
/// error order matches the historical behavior).
fn whole_views<'a>(db: &'a Database, q: &ConjunctiveQuery) -> Result<Vec<AtomView<'a>>> {
    check_safety(q)?;
    check_against_catalog(q, db.catalog())?;
    q.atoms
        .iter()
        .map(|a| db.relation(&a.relation).map(AtomView::Whole))
        .collect::<std::result::Result<_, _>>()
        .map_err(Into::into)
}

/// [`evaluate`] on the seed interpreter (per-step `HashMap` bindings,
/// no compiled plan). Kept so `tests/plan_equivalence.rs` and the
/// E12 benchmark can diff the compiled executor against the original
/// semantics; not a serving path.
#[deprecated(
    note = "superseded by compiled QueryPlan execution; retained only as the \
            differential-testing and E12 baseline"
)]
pub fn evaluate_interpreted(db: &Database, q: &ConjunctiveQuery) -> Result<Vec<Tuple>> {
    #[allow(deprecated)]
    evaluate_interpreted_with(db, q, EvalOptions::default())
}

/// [`evaluate_interpreted`] with explicit limits.
#[deprecated(
    note = "superseded by compiled QueryPlan execution; retained only as the \
            differential-testing and E12 baseline"
)]
pub fn evaluate_interpreted_with(
    db: &Database,
    q: &ConjunctiveQuery,
    options: EvalOptions,
) -> Result<Vec<Tuple>> {
    let views = whole_views(db, q)?;
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for_each_binding_views(q, &views, options, &mut |binding, _| {
        let t = project_head(q, binding);
        if seen.insert(t.clone()) {
            out.push(t);
        }
        Ok(())
    })?;
    Ok(out)
}

/// [`evaluate_grouped`] on the seed interpreter.
#[deprecated(
    note = "superseded by compiled QueryPlan execution; retained only as the \
            differential-testing and E12 baseline"
)]
pub fn evaluate_grouped_interpreted(
    db: &Database,
    q: &ConjunctiveQuery,
) -> Result<Vec<(Tuple, Vec<Binding>)>> {
    let views = whole_views(db, q)?;
    let mut order: Vec<Tuple> = Vec::new();
    let mut groups: HashMap<Tuple, Vec<Binding>> = HashMap::new();
    for_each_binding_views(q, &views, EvalOptions::default(), &mut |binding, _| {
        let t = project_head(q, binding);
        let entry = groups.entry(t.clone()).or_default();
        if entry.is_empty() {
            order.push(t);
        }
        entry.push(binding.clone());
        Ok(())
    })?;
    Ok(order
        .into_iter()
        .map(|t| {
            let b = groups.remove(&t).expect("group exists");
            (t, b)
        })
        .collect())
}

/// [`evaluate_annotated`] on the seed interpreter.
#[deprecated(
    note = "superseded by compiled QueryPlan execution; retained only as the \
            differential-testing and E12 baseline"
)]
pub fn evaluate_annotated_interpreted<S, F>(
    db: &Database,
    q: &ConjunctiveQuery,
    mut annotate: F,
) -> Result<Vec<(Tuple, S)>>
where
    S: CommutativeSemiring,
    F: FnMut(&str, usize) -> S,
{
    let views = whole_views(db, q)?;
    let mut order: Vec<Tuple> = Vec::new();
    let mut acc: HashMap<Tuple, S> = HashMap::new();
    for_each_binding_views(
        q,
        &views,
        EvalOptions::default(),
        &mut |binding, matched| {
            let product = matched
                .iter()
                .fold(S::one(), |p, (_, rel, row)| p.times(&annotate(rel, *row)));
            let t = project_head(q, binding);
            match acc.get_mut(&t) {
                Some(existing) => *existing = existing.plus(&product),
                None => {
                    order.push(t.clone());
                    acc.insert(t, product);
                }
            }
            Ok(())
        },
    )?;
    Ok(order
        .into_iter()
        .map(|t| {
            let s = acc.remove(&t).expect("annotation exists");
            (t, s)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use fgc_relation::schema::RelationSchema;
    use fgc_relation::{tuple, DataType};
    use fgc_semiring::{Natural, Polynomial};

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::with_names(
                "Family",
                &[
                    ("FID", DataType::Str),
                    ("FName", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::with_names(
                "FamilyIntro",
                &[("FID", DataType::Str), ("Text", DataType::Str)],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert_all(
            "Family",
            vec![
                tuple!["11", "Calcitonin", "gpcr"],
                tuple!["12", "Orexin", "gpcr"],
                tuple!["13", "Kinase", "enzyme"],
            ],
        )
        .unwrap();
        db.insert_all(
            "FamilyIntro",
            vec![
                tuple!["11", "The calcitonin peptide family"],
                tuple!["13", "Kinases catalyse"],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn select_with_comparison() {
        let db = sample_db();
        let q = parse_query("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\"").unwrap();
        let out = evaluate(&db, &q).unwrap();
        assert_eq!(out, vec![tuple!["Calcitonin"], tuple!["Orexin"]]);
    }

    #[test]
    fn join_via_shared_variable() {
        let db = sample_db();
        let q = parse_query("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)").unwrap();
        let mut out = evaluate(&db, &q).unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![
                tuple!["Calcitonin", "The calcitonin peptide family"],
                tuple!["Kinase", "Kinases catalyse"],
            ]
        );
    }

    #[test]
    fn paper_example_2_2_query() {
        // names of gpcr families that have an introduction page
        let db = sample_db();
        let q = parse_query("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\", FamilyIntro(F, Tx)").unwrap();
        let out = evaluate(&db, &q).unwrap();
        assert_eq!(out, vec![tuple!["Calcitonin"]]);
    }

    #[test]
    fn constants_in_atoms_act_as_selection() {
        let db = sample_db();
        let q = parse_query("Q(N) :- Family(\"11\", N, Ty)").unwrap();
        let out = evaluate(&db, &q).unwrap();
        assert_eq!(out, vec![tuple!["Calcitonin"]]);
    }

    #[test]
    fn projection_deduplicates() {
        let db = sample_db();
        let q = parse_query("Q(Ty) :- Family(F, N, Ty)").unwrap();
        let out = evaluate(&db, &q).unwrap();
        assert_eq!(out.len(), 2); // gpcr, enzyme
    }

    #[test]
    fn grouped_collects_all_bindings() {
        let db = sample_db();
        let q = parse_query("Q(Ty) :- Family(F, N, Ty)").unwrap();
        let grouped = evaluate_grouped(&db, &q).unwrap();
        let gpcr = grouped.iter().find(|(t, _)| t == &tuple!["gpcr"]).unwrap();
        assert_eq!(gpcr.1.len(), 2); // two gpcr families
        let enzyme = grouped
            .iter()
            .find(|(t, _)| t == &tuple!["enzyme"])
            .unwrap();
        assert_eq!(enzyme.1.len(), 1);
    }

    #[test]
    fn annotated_eval_counts_derivations() {
        let db = sample_db();
        let q = parse_query("Q(Ty) :- Family(F, N, Ty)").unwrap();
        let out: Vec<(Tuple, Natural)> = evaluate_annotated(&db, &q, |_, _| Natural(1)).unwrap();
        let gpcr = out.iter().find(|(t, _)| t == &tuple!["gpcr"]).unwrap();
        assert_eq!(gpcr.1, Natural(2));
    }

    #[test]
    fn annotated_eval_builds_provenance_polynomials() {
        let db = sample_db();
        let q = parse_query("Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx)").unwrap();
        let out: Vec<(Tuple, Polynomial<String>)> = evaluate_annotated(&db, &q, |rel, row| {
            Polynomial::token(format!("{rel}:{row}"))
        })
        .unwrap();
        let calci = out
            .iter()
            .find(|(t, _)| t == &tuple!["Calcitonin"])
            .unwrap();
        // exactly one derivation joining Family row 0 and Intro row 0
        assert_eq!(calci.1.num_monomials(), 1);
        let m = calci.1.monomials().next().unwrap();
        assert_eq!(m.degree(), 2);
        assert_eq!(m.exponent(&"Family:0".to_string()), 1);
        assert_eq!(m.exponent(&"FamilyIntro:0".to_string()), 1);
    }

    #[test]
    fn inequality_comparisons() {
        let db = sample_db();
        let q = parse_query("Q(N) :- Family(F, N, Ty), F > \"11\"").unwrap();
        let out = evaluate(&db, &q).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn var_to_var_comparison() {
        let db = sample_db();
        let q = parse_query("Q(A, B) :- Family(F1, A, T1), Family(F2, B, T2), F1 < F2").unwrap();
        let out = evaluate(&db, &q).unwrap();
        assert_eq!(out.len(), 3); // (11,12) (11,13) (12,13)
    }

    #[test]
    fn empty_result_is_ok() {
        let db = sample_db();
        let q = parse_query("Q(N) :- Family(F, N, Ty), Ty = \"nope\"").unwrap();
        assert!(evaluate(&db, &q).unwrap().is_empty());
    }

    #[test]
    fn contradictory_selection_yields_empty() {
        let db = sample_db();
        let q = parse_query("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\", Ty = \"enzyme\"").unwrap();
        assert!(evaluate(&db, &q).unwrap().is_empty());
    }

    #[test]
    fn unsafe_query_rejected() {
        let db = sample_db();
        let q = parse_query("Q(X) :- Family(F, N, Ty)").unwrap();
        assert!(matches!(
            evaluate(&db, &q).unwrap_err(),
            QueryError::Unsafe { .. }
        ));
    }

    #[test]
    fn budget_enforced() {
        let db = sample_db();
        let q = parse_query("Q(A, B) :- Family(A, X, Y), Family(B, Z, W)").unwrap();
        let err = evaluate_with(&db, &q, EvalOptions { max_bindings: 4 }).unwrap_err();
        assert!(matches!(err, QueryError::BudgetExceeded { .. }));
    }

    #[test]
    fn self_join_uses_distinct_atom_occurrences() {
        let db = sample_db();
        // pairs of distinct families with the same type
        let q = parse_query("Q(A, B) :- Family(A, N1, T), Family(B, N2, T), A != B").unwrap();
        let out = evaluate(&db, &q).unwrap();
        assert_eq!(out.len(), 2); // (11,12) and (12,11)
    }

    #[test]
    fn count_bindings_counts_derivations() {
        let db = sample_db();
        let q = parse_query("Q(Ty) :- Family(F, N, Ty)").unwrap();
        assert_eq!(count_bindings(&db, &q).unwrap(), 3);
    }

    #[test]
    fn indexes_do_not_change_results() {
        let mut db = sample_db();
        let q = parse_query("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)").unwrap();
        let plain = evaluate(&db, &q).unwrap();
        db.build_default_indexes().unwrap();
        db.relation_mut("Family").unwrap().build_index(2).unwrap();
        let indexed = evaluate(&db, &q).unwrap();
        let mut a = plain;
        let mut b = indexed;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
