//! Routed evaluation over a [`ShardedDatabase`].
//!
//! The [`ShardRouter`] statically plans which shards each atom of a
//! [`ConjunctiveQuery`] must touch: an equality selection on the
//! relation's shard-key column — a constant in the atom itself, or a
//! `Var = Const` comparison — proves every matching tuple lives on
//! one shard (`hash(const) % N`), so that atom scans a single
//! fragment; anything else fans out to all shards.
//!
//! Evaluation then runs the standard backtracking join over per-shard
//! fragments presented in **global insertion order** (see
//! [`crate::eval`]'s `AtomView`). Derivations whose rows live on
//! different shards merge exactly where the unsharded evaluator
//! merges them: set-semantics union in [`evaluate_sharded`], and the
//! semiring `+` over bindings in [`evaluate_annotated_sharded`] —
//! Definition 3.2's sum over bindings is accumulated in the identical
//! sequence, which keeps citations **byte-for-byte** equal to the
//! unsharded engine (not merely set-equal).

use crate::ast::{CompOp, ConjunctiveQuery, Term};
use crate::error::Result;
use crate::eval::{
    evaluate_annotated_frames, evaluate_frames, evaluate_grouped_frames, AtomView, Binding,
    EvalOptions,
};
use crate::plan::{for_each_frame, QueryPlan};
use fgc_relation::sharded::{shard_of_value, ShardedDatabase};
use fgc_relation::{Tuple, Value};
use fgc_semiring::CommutativeSemiring;
use std::collections::{HashMap, HashSet};

/// The shards one atom's scan must touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSet {
    /// Routing proved the atom confined to a single shard.
    One(usize),
    /// No usable selection on the shard key: scan every shard.
    All,
}

/// A per-atom routing plan for one query.
#[derive(Debug, Clone)]
pub struct RoutePlan {
    /// Number of shards in the store the plan was made for.
    pub shards: usize,
    /// One entry per query atom, in atom order.
    pub atoms: Vec<ShardSet>,
}

impl RoutePlan {
    /// Atoms routed to exactly one shard.
    pub fn pruned_atoms(&self) -> usize {
        self.atoms
            .iter()
            .filter(|s| matches!(s, ShardSet::One(_)))
            .count()
    }

    /// Atoms that fan out to every shard.
    pub fn fanout_atoms(&self) -> usize {
        self.atoms.len() - self.pruned_atoms()
    }

    /// Whether every atom was pruned to a single shard.
    pub fn fully_routed(&self) -> bool {
        !self.atoms.is_empty() && self.fanout_atoms() == 0
    }

    /// Total fragments scanned under this plan (the unsharded
    /// equivalent would scan `atoms.len()` whole relations).
    pub fn fragments_scanned(&self) -> usize {
        self.atoms
            .iter()
            .map(|s| match s {
                ShardSet::One(_) => 1,
                ShardSet::All => self.shards,
            })
            .sum()
    }
}

/// Plans shard routing for conjunctive queries against one store.
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter<'a> {
    db: &'a ShardedDatabase,
}

impl<'a> ShardRouter<'a> {
    /// A router over a sharded store.
    pub fn new(db: &'a ShardedDatabase) -> Self {
        ShardRouter { db }
    }

    /// Statically plan the shards each atom must touch. Only
    /// selections that hold *before* enumeration starts are used
    /// (constants in atom positions and `Var = Const` comparisons);
    /// bindings produced mid-join are deliberately ignored so the
    /// plan — like the unsharded planner's statistics — is a pure
    /// function of the query.
    pub fn plan(&self, q: &ConjunctiveQuery) -> RoutePlan {
        let shards = self.db.shard_count();
        // Seed constants exactly like the evaluator does. On a
        // contradictory second constant the first seed stays: the
        // evaluation is empty either way, and any single-shard scan
        // of an empty result is sound.
        let mut consts: HashMap<String, Value> = HashMap::new();
        for c in &q.comparisons {
            let n = c.normalized();
            if n.op == CompOp::Eq {
                if let (Term::Var(v), Term::Const(val)) = (&n.left, &n.right) {
                    consts.entry(v.clone()).or_insert_with(|| val.clone());
                }
            }
        }
        let atoms = q
            .atoms
            .iter()
            .map(|atom| {
                let Some(col) = self.db.shard_key_column(&atom.relation) else {
                    return ShardSet::All;
                };
                match atom.terms.get(col) {
                    Some(Term::Const(v)) => ShardSet::One(shard_of_value(v, shards)),
                    Some(Term::Var(x)) => match consts.get(x.as_str()) {
                        Some(v) => ShardSet::One(shard_of_value(v, shards)),
                        None => ShardSet::All,
                    },
                    None => ShardSet::All, // arity mismatch: caught by the catalog check
                }
            })
            .collect();
        RoutePlan { shards, atoms }
    }
}

/// Build the per-atom views a route prescribes, in global order.
/// Validation already ran when the [`QueryPlan`] was compiled; the
/// route must come from the same query the plan was compiled from.
fn routed_views<'a>(
    db: &'a ShardedDatabase,
    plan: &QueryPlan,
    route: &RoutePlan,
) -> Result<Vec<AtomView<'a>>> {
    // A plan/route pair from different queries would zip-truncate
    // here and index out of bounds (or scan wrong fragments) in the
    // executor — fail fast instead, in release builds too.
    assert_eq!(
        plan.atom_relations().len(),
        route.atoms.len(),
        "QueryPlan and RoutePlan must come from the same query"
    );
    plan.atom_relations()
        .iter()
        .zip(&route.atoms)
        .map(|(relation, set)| routed_view(db, relation, *set))
        .collect()
}

fn routed_view<'a>(db: &'a ShardedDatabase, relation: &str, set: ShardSet) -> Result<AtomView<'a>> {
    // everything borrows from the store's precomputed placement maps:
    // building a view costs O(shards), not O(tuples), so a pruned
    // lookup pays only for the fragment it actually scans
    match set {
        // a single shard holds the whole relation: the fragment *is*
        // the relation, in global order already
        ShardSet::All if db.shard_count() == 1 => {
            Ok(AtomView::Whole(db.shards()[0].relation(relation)?))
        }
        ShardSet::All => Ok(AtomView::Scatter {
            fragments: db.fragments(relation)?,
            placement: db.placement(relation)?,
            global_ids: db
                .shard_global_ids(relation)?
                .iter()
                .map(Vec::as_slice)
                .collect(),
        }),
        ShardSet::One(s) => Ok(AtomView::Fragment {
            fragment: db.shards()[s].relation(relation)?,
            global_ids: &db.shard_global_ids(relation)?[s],
            planned_len: db.placement(relation)?.len(),
        }),
    }
}

/// [`crate::evaluate`] over a sharded store: identical output (tuples
/// *and* order) to evaluating the assembled unsharded database.
pub fn evaluate_sharded(db: &ShardedDatabase, q: &ConjunctiveQuery) -> Result<Vec<Tuple>> {
    evaluate_sharded_with(db, q, EvalOptions::default())
}

/// [`evaluate_sharded`] with explicit limits.
pub fn evaluate_sharded_with(
    db: &ShardedDatabase,
    q: &ConjunctiveQuery,
    options: EvalOptions,
) -> Result<Vec<Tuple>> {
    evaluate_sharded_with_plan(db, q, &ShardRouter::new(db).plan(q), options)
}

/// [`evaluate_sharded_with`] under a caller-supplied [`RoutePlan`]
/// (callers that inspect the route — e.g. for routing counters —
/// pass it back instead of planning twice). Compiles a [`QueryPlan`]
/// per call; use [`evaluate_sharded_compiled`] to reuse one.
pub fn evaluate_sharded_with_plan(
    db: &ShardedDatabase,
    q: &ConjunctiveQuery,
    route: &RoutePlan,
    options: EvalOptions,
) -> Result<Vec<Tuple>> {
    evaluate_sharded_compiled(db, &QueryPlan::compile_sharded(q, db)?, route, options)
}

/// [`evaluate_sharded_with_plan`] over a pre-compiled [`QueryPlan`].
/// One plan serves every routing of its query: the router prunes
/// *which fragments* each atom scans, while the plan fixes the join
/// order and slot layout from global sizes, so the two compose
/// without recompilation.
pub fn evaluate_sharded_compiled(
    db: &ShardedDatabase,
    plan: &QueryPlan,
    route: &RoutePlan,
    options: EvalOptions,
) -> Result<Vec<Tuple>> {
    evaluate_frames(plan, &routed_views(db, plan, route)?, options)
}

/// [`crate::evaluate_grouped`] over a sharded store.
pub fn evaluate_grouped_sharded(
    db: &ShardedDatabase,
    q: &ConjunctiveQuery,
) -> Result<Vec<(Tuple, Vec<Binding>)>> {
    evaluate_grouped_sharded_with(db, q, EvalOptions::default())
}

/// [`evaluate_grouped_sharded`] with explicit limits.
pub fn evaluate_grouped_sharded_with(
    db: &ShardedDatabase,
    q: &ConjunctiveQuery,
    options: EvalOptions,
) -> Result<Vec<(Tuple, Vec<Binding>)>> {
    evaluate_grouped_sharded_with_plan(db, q, &ShardRouter::new(db).plan(q), options)
}

/// [`evaluate_grouped_sharded_with`] under a caller-supplied route.
pub fn evaluate_grouped_sharded_with_plan(
    db: &ShardedDatabase,
    q: &ConjunctiveQuery,
    route: &RoutePlan,
    options: EvalOptions,
) -> Result<Vec<(Tuple, Vec<Binding>)>> {
    evaluate_grouped_sharded_compiled(db, &QueryPlan::compile_sharded(q, db)?, route, options)
}

/// [`evaluate_grouped_sharded_with_plan`] over a pre-compiled plan.
pub fn evaluate_grouped_sharded_compiled(
    db: &ShardedDatabase,
    plan: &QueryPlan,
    route: &RoutePlan,
    options: EvalOptions,
) -> Result<Vec<(Tuple, Vec<Binding>)>> {
    evaluate_grouped_frames(plan, &routed_views(db, plan, route)?, options)
}

/// [`crate::evaluate_annotated`] over a sharded store. Row ids handed
/// to `annotate` are **global** insertion ranks — the same ids the
/// unsharded evaluator reports — and per-tuple sums accumulate in the
/// same order, so provenance polynomials come out byte-identical.
pub fn evaluate_annotated_sharded<S, F>(
    db: &ShardedDatabase,
    q: &ConjunctiveQuery,
    annotate: F,
) -> Result<Vec<(Tuple, S)>>
where
    S: CommutativeSemiring,
    F: FnMut(&str, usize) -> S,
{
    let route = ShardRouter::new(db).plan(q);
    evaluate_annotated_sharded_compiled(
        db,
        &QueryPlan::compile_sharded(q, db)?,
        &route,
        EvalOptions::default(),
        annotate,
    )
}

/// [`evaluate_annotated_sharded`] over a pre-compiled plan and
/// route.
pub fn evaluate_annotated_sharded_compiled<S, F>(
    db: &ShardedDatabase,
    plan: &QueryPlan,
    route: &RoutePlan,
    options: EvalOptions,
    annotate: F,
) -> Result<Vec<(Tuple, S)>>
where
    S: CommutativeSemiring,
    F: FnMut(&str, usize) -> S,
{
    evaluate_annotated_frames(plan, &routed_views(db, plan, route)?, options, annotate)
}

/// Restrict a route so only `shard`'s fragment of the join-order
/// lead atom is scanned. Every derivation's lead row lives on exactly
/// one shard, so the fragments of all shards partition the global
/// enumeration; non-lead atoms keep their original routing (which is
/// a pure function of the query, hence identical on every replica).
fn lead_route(plan: &QueryPlan, route: &RoutePlan, shard: usize) -> RoutePlan {
    let mut lead = route.clone();
    if let Some(&first) = plan.join_order().first() {
        lead.atoms[first] = ShardSet::One(shard);
    }
    lead
}

/// This shard's fragment of [`evaluate_sharded_compiled`]'s output:
/// `(gid, seq, tuple)` rows where `gid` is the lead atom's global row
/// id and `seq` the emission index under that lead row. Concatenating
/// all shards' fragments, sorting by `(gid, seq)` and deduplicating
/// keep-first reproduces the global evaluation byte-for-byte (the
/// per-shard keep-first dedup here is sound because every lead row —
/// and with it a tuple's globally first derivation — lives on exactly
/// one shard).
pub fn lead_fragment_answers(
    db: &ShardedDatabase,
    plan: &QueryPlan,
    route: &RoutePlan,
    shard: usize,
    options: EvalOptions,
) -> Result<Vec<(usize, usize, Tuple)>> {
    // Zero-atom plans have no lead row to partition on: shard 0
    // serves the (at most one) constant answer, the rest stay empty.
    if plan.join_order().is_empty() && shard != 0 {
        return Ok(Vec::new());
    }
    let lead = lead_route(plan, route, shard);
    let views = routed_views(db, plan, &lead)?;
    let mut rows = Vec::new();
    let mut seen = HashSet::new();
    let mut last_gid = None;
    let mut seq = 0usize;
    for_each_frame(plan, &views, options, &mut |frame, matched| {
        let gid = matched.first().map(|m| m.2).unwrap_or(0);
        if last_gid != Some(gid) {
            last_gid = Some(gid);
            seq = 0;
        }
        let t = plan.project_head(frame);
        if seen.insert(t.clone()) {
            rows.push((gid, seq, t));
        }
        seq += 1;
        Ok(())
    })?;
    Ok(rows)
}

/// This shard's fragment of [`evaluate_grouped_sharded_compiled`]'s
/// emissions: `(gid, seq, head tuple, binding)` per derivation, no
/// dedup. Sorting the union of all shards' fragments by `(gid, seq)`
/// and grouping by head tuple in first-appearance order reproduces
/// the global grouped evaluation exactly.
pub fn lead_fragment_bindings(
    db: &ShardedDatabase,
    plan: &QueryPlan,
    route: &RoutePlan,
    shard: usize,
    options: EvalOptions,
) -> Result<Vec<(usize, usize, Tuple, Binding)>> {
    if plan.join_order().is_empty() && shard != 0 {
        return Ok(Vec::new());
    }
    let lead = lead_route(plan, route, shard);
    let views = routed_views(db, plan, &lead)?;
    let mut rows = Vec::new();
    let mut last_gid = None;
    let mut seq = 0usize;
    for_each_frame(plan, &views, options, &mut |frame, matched| {
        let gid = matched.first().map(|m| m.2).unwrap_or(0);
        if last_gid != Some(gid) {
            last_gid = Some(gid);
            seq = 0;
        }
        rows.push((gid, seq, plan.project_head(frame), plan.binding(frame)));
        seq += 1;
        Ok(())
    })?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::{evaluate, evaluate_annotated, evaluate_grouped};
    use fgc_relation::schema::RelationSchema;
    use fgc_relation::sharded::ShardKeySpec;
    use fgc_relation::{tuple, DataType, Database};
    use fgc_semiring::Polynomial;

    fn plain_db(families: usize) -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::with_names(
                "Family",
                &[
                    ("FID", DataType::Str),
                    ("FName", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::with_names(
                "FamilyIntro",
                &[("FID", DataType::Str), ("Text", DataType::Str)],
                &["FID"],
            )
            .unwrap(),
        )
        .unwrap();
        let types = ["gpcr", "enzyme", "channel"];
        for i in 0..families {
            db.insert(
                "Family",
                tuple![format!("f{i}"), format!("Name{i}"), types[i % 3]],
            )
            .unwrap();
            if i % 2 == 0 {
                db.insert("FamilyIntro", tuple![format!("f{i}"), format!("Intro{i}")])
                    .unwrap();
            }
        }
        db
    }

    fn spec() -> ShardKeySpec {
        ShardKeySpec::new()
            .with("Family", "FID")
            .with("FamilyIntro", "FID")
    }

    fn queries() -> Vec<ConjunctiveQuery> {
        [
            "Q(N) :- Family(F, N, Ty)",
            "Q(N) :- Family(F, N, Ty), Ty = \"gpcr\"",
            "Q(N) :- Family(\"f3\", N, Ty)",
            "Q(N) :- Family(F, N, Ty), F = \"f4\"",
            "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
            "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), F = \"f2\"",
            "Q(Ty) :- Family(F, N, Ty)",
            "Q(A, B) :- Family(A, N1, T), Family(B, N2, T), A != B",
        ]
        .iter()
        .map(|q| parse_query(q).unwrap())
        .collect()
    }

    #[test]
    fn sharded_evaluation_matches_unsharded_exactly() {
        let db = plain_db(23);
        for shards in [1, 2, 4, 7] {
            let sharded = ShardedDatabase::from_database(&db, shards, spec()).unwrap();
            for q in queries() {
                let plain = evaluate(&db, &q).unwrap();
                let routed = evaluate_sharded(&sharded, &q).unwrap();
                assert_eq!(plain, routed, "shards={shards} q={q}");
            }
        }
    }

    #[test]
    fn sharded_grouped_matches_unsharded_exactly() {
        let db = plain_db(17);
        for shards in [2, 5] {
            let sharded = ShardedDatabase::from_database(&db, shards, spec()).unwrap();
            for q in queries() {
                let plain = evaluate_grouped(&db, &q).unwrap();
                let routed = evaluate_grouped_sharded(&sharded, &q).unwrap();
                assert_eq!(plain, routed, "shards={shards} q={q}");
            }
        }
    }

    #[test]
    fn sharded_annotated_polynomials_are_byte_identical() {
        let db = plain_db(17);
        for shards in [1, 2, 4, 7] {
            let sharded = ShardedDatabase::from_database(&db, shards, spec()).unwrap();
            for q in queries() {
                let plain: Vec<(Tuple, Polynomial<String>)> =
                    evaluate_annotated(&db, &q, |rel, row| {
                        Polynomial::token(format!("{rel}:{row}"))
                    })
                    .unwrap();
                let routed: Vec<(Tuple, Polynomial<String>)> =
                    evaluate_annotated_sharded(&sharded, &q, |rel, row| {
                        Polynomial::token(format!("{rel}:{row}"))
                    })
                    .unwrap();
                assert_eq!(plain.len(), routed.len(), "shards={shards} q={q}");
                for ((t1, p1), (t2, p2)) in plain.iter().zip(&routed) {
                    assert_eq!(t1, t2, "shards={shards} q={q}");
                    assert_eq!(
                        format!("{p1:?}"),
                        format!("{p2:?}"),
                        "shards={shards} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn router_prunes_constant_selections_on_the_shard_key() {
        let db = plain_db(12);
        let sharded = ShardedDatabase::from_database(&db, 4, spec()).unwrap();
        let router = ShardRouter::new(&sharded);

        // constant in the atom's shard-key position
        let plan = router.plan(&parse_query("Q(N) :- Family(\"f3\", N, Ty)").unwrap());
        assert_eq!(plan.pruned_atoms(), 1);
        assert_eq!(plan.fragments_scanned(), 1);
        assert!(plan.fully_routed());

        // equality comparison binding the shard-key variable
        let plan = router.plan(&parse_query("Q(N) :- Family(F, N, Ty), F = \"f3\"").unwrap());
        assert_eq!(
            plan.atoms,
            vec![ShardSet::One(shard_of_value(&Value::str("f3"), 4))]
        );

        // selection on a non-key column cannot prune
        let plan = router.plan(&parse_query("Q(N) :- Family(F, N, Ty), Ty = \"gpcr\"").unwrap());
        assert_eq!(plan.atoms, vec![ShardSet::All]);
        assert_eq!(plan.fragments_scanned(), 4);

        // joins route per atom: the keyed selection prunes its atom,
        // the join partner fans out
        let plan = router.plan(
            &parse_query("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(G, Tx), F = \"f3\"").unwrap(),
        );
        assert_eq!(plan.pruned_atoms(), 1);
        assert_eq!(plan.fanout_atoms(), 1);
        assert_eq!(plan.fragments_scanned(), 5);
    }

    #[test]
    fn whole_tuple_fallback_never_prunes() {
        let db = plain_db(12);
        let sharded = ShardedDatabase::from_database(&db, 4, ShardKeySpec::new()).unwrap();
        let router = ShardRouter::new(&sharded);
        let plan = router.plan(&parse_query("Q(N) :- Family(\"f3\", N, Ty)").unwrap());
        assert_eq!(plan.atoms, vec![ShardSet::All]);
        // ... but evaluation is still exact
        let q = parse_query("Q(N) :- Family(\"f3\", N, Ty)").unwrap();
        assert_eq!(
            evaluate(&db, &q).unwrap(),
            evaluate_sharded(&sharded, &q).unwrap()
        );
    }

    #[test]
    fn pruned_scan_sees_only_one_fragment_yet_stays_exact() {
        // indexes on each shard so the pruned path exercises probes
        let db = plain_db(40);
        let mut sharded = ShardedDatabase::from_database(&db, 4, spec()).unwrap();
        sharded.build_index("Family", 0).unwrap();
        sharded.build_index("FamilyIntro", 0).unwrap();
        for fid in ["f0", "f7", "f13", "f39"] {
            let q = parse_query(&format!(
                "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), F = \"{fid}\""
            ))
            .unwrap();
            assert_eq!(
                evaluate(&db, &q).unwrap(),
                evaluate_sharded(&sharded, &q).unwrap(),
                "{fid}"
            );
        }
    }

    #[test]
    fn merged_answer_fragments_reproduce_global_evaluation() {
        let db = plain_db(23);
        for shards in [1, 2, 4, 7] {
            let sharded = ShardedDatabase::from_database(&db, shards, spec()).unwrap();
            for q in queries() {
                let plan = QueryPlan::compile_sharded(&q, &sharded).unwrap();
                let route = ShardRouter::new(&sharded).plan(&q);
                let mut frags = Vec::new();
                for s in 0..shards {
                    frags.extend(
                        lead_fragment_answers(&sharded, &plan, &route, s, EvalOptions::default())
                            .unwrap(),
                    );
                }
                frags.sort_by_key(|(gid, seq, _)| (*gid, *seq));
                let mut merged = Vec::new();
                let mut seen = HashSet::new();
                for (_, _, t) in frags {
                    if seen.insert(t.clone()) {
                        merged.push(t);
                    }
                }
                assert_eq!(evaluate(&db, &q).unwrap(), merged, "shards={shards} q={q}");
            }
        }
    }

    #[test]
    fn merged_binding_fragments_reproduce_grouped_evaluation() {
        let db = plain_db(17);
        for shards in [1, 2, 5] {
            let sharded = ShardedDatabase::from_database(&db, shards, spec()).unwrap();
            for q in queries() {
                let plan = QueryPlan::compile_sharded(&q, &sharded).unwrap();
                let route = ShardRouter::new(&sharded).plan(&q);
                let mut frags = Vec::new();
                for s in 0..shards {
                    frags.extend(
                        lead_fragment_bindings(&sharded, &plan, &route, s, EvalOptions::default())
                            .unwrap(),
                    );
                }
                frags.sort_by_key(|frag| (frag.0, frag.1));
                let mut merged: Vec<(Tuple, Vec<Binding>)> = Vec::new();
                for (_, _, t, b) in frags {
                    match merged.iter_mut().find(|(mt, _)| *mt == t) {
                        Some((_, bs)) => bs.push(b),
                        None => merged.push((t, vec![b])),
                    }
                }
                assert_eq!(
                    evaluate_grouped(&db, &q).unwrap(),
                    merged,
                    "shards={shards} q={q}"
                );
            }
        }
    }

    #[test]
    fn errors_match_the_unsharded_evaluator() {
        let db = plain_db(5);
        let sharded = ShardedDatabase::from_database(&db, 3, spec()).unwrap();
        let unsafe_q = parse_query("Q(X) :- Family(F, N, Ty)").unwrap();
        assert!(matches!(
            evaluate_sharded(&sharded, &unsafe_q).unwrap_err(),
            crate::QueryError::Unsafe { .. }
        ));
        let unknown = parse_query("Q(X) :- Nope(X)").unwrap();
        assert!(evaluate_sharded(&sharded, &unknown).is_err());
        let q = parse_query("Q(A, B) :- Family(A, X, Y), Family(B, Z, W)").unwrap();
        let err = evaluate_sharded_with(&sharded, &q, EvalOptions { max_bindings: 4 }).unwrap_err();
        assert!(matches!(err, crate::QueryError::BudgetExceeded { .. }));
    }
}
