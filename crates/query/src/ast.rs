//! Abstract syntax of (parameterized) conjunctive queries.
//!
//! Definition 2.1 of the paper writes view definitions as
//! `λX. V(Y) :- Q` where `Q` is a conjunction of atoms, `X ⊆ Y` are
//! the *parameters*, and comparison predicates may appear in the body
//! (the paper's rewriting definition, Def. 2.2, explicitly allows
//! "comparison predicates" as subgoals).

use crate::error::{QueryError, Result};
use fgc_relation::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A term: variable or constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable, identified by name.
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Shorthand variable constructor.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Shorthand constant constructor.
    pub fn val(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant value, if this is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::Const(c) => write!(f, "{}", c.render()),
        }
    }
}

/// A relational atom `R(t1, ..., tn)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Variables occurring in the atom, in order of first occurrence.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().filter_map(Term::as_var)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CompOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompOp {
    /// Evaluate the operator on two values.
    pub fn eval(self, l: &Value, r: &Value) -> bool {
        match self {
            CompOp::Eq => l == r,
            CompOp::Ne => l != r,
            CompOp::Lt => l < r,
            CompOp::Le => l <= r,
            CompOp::Gt => l > r,
            CompOp::Ge => l >= r,
        }
    }

    /// The operator with sides swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CompOp {
        match self {
            CompOp::Eq => CompOp::Eq,
            CompOp::Ne => CompOp::Ne,
            CompOp::Lt => CompOp::Gt,
            CompOp::Le => CompOp::Ge,
            CompOp::Gt => CompOp::Lt,
            CompOp::Ge => CompOp::Le,
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A comparison predicate `t1 op t2`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Comparison {
    /// Left term.
    pub left: Term,
    /// Operator.
    pub op: CompOp,
    /// Right term.
    pub right: Term,
}

impl Comparison {
    /// Build a comparison.
    pub fn new(left: Term, op: CompOp, right: Term) -> Self {
        Comparison { left, op, right }
    }

    /// Normalize so that a constant (if any) is on the right and,
    /// for two variables, the lexicographically smaller is on the
    /// left. Makes syntactic comparison of predicates robust.
    pub fn normalized(&self) -> Comparison {
        match (&self.left, &self.right) {
            (Term::Const(_), Term::Var(_)) => Comparison {
                left: self.right.clone(),
                op: self.op.flip(),
                right: self.left.clone(),
            },
            (Term::Var(a), Term::Var(b)) if b < a => Comparison {
                left: self.right.clone(),
                op: self.op.flip(),
                right: self.left.clone(),
            },
            _ => self.clone(),
        }
    }

    /// Variables occurring in the comparison.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        [&self.left, &self.right]
            .into_iter()
            .filter_map(Term::as_var)
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A (possibly parameterized) conjunctive query
/// `λ x1,...,xn. H(y1,...,ym) :- A1, ..., Ak, C1, ..., Cl`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    /// Head predicate name (`V1`, `Q`, ...).
    pub name: String,
    /// λ-parameters (possibly empty). Per Def. 2.1, `X ⊆ Y`:
    /// validated by [`crate::safety::check_safety`].
    pub params: Vec<String>,
    /// Head terms (variables or constants).
    pub head: Vec<Term>,
    /// Relational atoms.
    pub atoms: Vec<Atom>,
    /// Comparison predicates.
    pub comparisons: Vec<Comparison>,
}

impl ConjunctiveQuery {
    /// A query with no parameters and no comparisons.
    pub fn new(name: impl Into<String>, head: Vec<Term>, atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery {
            name: name.into(),
            params: Vec::new(),
            head,
            atoms,
            comparisons: Vec::new(),
        }
    }

    /// Add λ-parameters (builder style).
    pub fn with_params(mut self, params: Vec<String>) -> Self {
        self.params = params;
        self
    }

    /// Add comparisons (builder style).
    pub fn with_comparisons(mut self, comparisons: Vec<Comparison>) -> Self {
        self.comparisons = comparisons;
        self
    }

    /// Is the query parameterized (has a λ-term)?
    pub fn is_parameterized(&self) -> bool {
        !self.params.is_empty()
    }

    /// All variables occurring anywhere (body, comparisons, head),
    /// sorted.
    pub fn all_vars(&self) -> BTreeSet<&str> {
        let mut out: BTreeSet<&str> = BTreeSet::new();
        for a in &self.atoms {
            out.extend(a.vars());
        }
        for c in &self.comparisons {
            out.extend(c.vars());
        }
        out.extend(self.head.iter().filter_map(Term::as_var));
        out.extend(self.params.iter().map(String::as_str));
        out
    }

    /// Variables occurring in relational atoms.
    pub fn body_vars(&self) -> BTreeSet<&str> {
        self.atoms.iter().flat_map(Atom::vars).collect()
    }

    /// Head variables in order (duplicates preserved).
    pub fn head_vars(&self) -> impl Iterator<Item = &str> {
        self.head.iter().filter_map(Term::as_var)
    }

    /// Arity of the head.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Bind the λ-parameters to values, producing an unparameterized
    /// query: each parameter variable is replaced by its value
    /// everywhere (head, atoms, comparisons).
    ///
    /// This realizes the paper's *view instantiation*
    /// `V(Y)(a1,...,an)`.
    pub fn instantiate(&self, args: &[Value]) -> Result<ConjunctiveQuery> {
        if args.len() != self.params.len() {
            return Err(QueryError::ParameterMismatch {
                query: self.name.clone(),
                expected: self.params.len(),
                actual: args.len(),
            });
        }
        let subst: crate::subst::Substitution = self
            .params
            .iter()
            .zip(args)
            .map(|(p, v)| (p.clone(), Term::Const(v.clone())))
            .collect();
        let mut out = crate::subst::apply_query(&subst, self);
        out.params.clear();
        Ok(out)
    }

    /// Rename every variable with a suffix, producing a query that
    /// shares no variables with the original (for expansions).
    pub fn freshen(&self, suffix: &str) -> ConjunctiveQuery {
        let subst: crate::subst::Substitution = self
            .all_vars()
            .into_iter()
            .map(|v| (v.to_string(), Term::Var(format!("{v}{suffix}"))))
            .collect();
        let mut renamed = crate::subst::apply_query(&subst, self);
        renamed.params = self.params.iter().map(|p| format!("{p}{suffix}")).collect();
        renamed
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.params.is_empty() {
            write!(f, "lambda {}. ", self.params.join(", "))?;
        }
        write!(f, "{}(", self.name)?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(") :- ")?;
        let mut first = true;
        for a in &self.atoms {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for c in &self.comparisons {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1() -> ConjunctiveQuery {
        // lambda F. V1(F, N, Ty) :- Family(F, N, Ty)
        ConjunctiveQuery::new(
            "V1",
            vec![Term::var("F"), Term::var("N"), Term::var("Ty")],
            vec![Atom::new(
                "Family",
                vec![Term::var("F"), Term::var("N"), Term::var("Ty")],
            )],
        )
        .with_params(vec!["F".into()])
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(
            v1().to_string(),
            "lambda F. V1(F, N, Ty) :- Family(F, N, Ty)"
        );
    }

    #[test]
    fn display_with_comparison() {
        let q = ConjunctiveQuery::new(
            "Q",
            vec![Term::var("N")],
            vec![Atom::new(
                "Family",
                vec![Term::var("F"), Term::var("N"), Term::var("Ty")],
            )],
        )
        .with_comparisons(vec![Comparison::new(
            Term::var("Ty"),
            CompOp::Eq,
            Term::val("gpcr"),
        )]);
        assert_eq!(q.to_string(), "Q(N) :- Family(F, N, Ty), Ty = \"gpcr\"");
    }

    #[test]
    fn instantiate_binds_parameters() {
        let inst = v1().instantiate(&[Value::str("11")]).unwrap();
        assert!(inst.params.is_empty());
        assert_eq!(inst.head[0], Term::val("11"));
        assert_eq!(inst.atoms[0].terms[0], Term::val("11"));
    }

    #[test]
    fn instantiate_checks_arity() {
        let err = v1().instantiate(&[]).unwrap_err();
        assert!(matches!(err, QueryError::ParameterMismatch { .. }));
    }

    #[test]
    fn freshen_renames_everything() {
        let fresh = v1().freshen("_1");
        assert_eq!(fresh.params, vec!["F_1"]);
        assert_eq!(fresh.atoms[0].terms[0], Term::var("F_1"));
        let original_vars = v1().all_vars().len();
        assert_eq!(fresh.all_vars().len(), original_vars);
        assert!(fresh.all_vars().iter().all(|v| v.ends_with("_1")));
    }

    #[test]
    fn normalized_comparison_puts_constant_right() {
        let c = Comparison::new(Term::val("gpcr"), CompOp::Eq, Term::var("Ty"));
        let n = c.normalized();
        assert_eq!(n.left, Term::var("Ty"));
        assert_eq!(n.right, Term::val("gpcr"));
    }

    #[test]
    fn normalized_orders_variables() {
        let c = Comparison::new(Term::var("Z"), CompOp::Lt, Term::var("A"));
        let n = c.normalized();
        assert_eq!(n.left, Term::var("A"));
        assert_eq!(n.op, CompOp::Gt);
        assert_eq!(n.right, Term::var("Z"));
    }

    #[test]
    fn comp_op_eval_and_flip() {
        use fgc_relation::Value;
        assert!(CompOp::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(!CompOp::Ge.eval(&Value::Int(1), &Value::Int(2)));
        for op in [
            CompOp::Eq,
            CompOp::Ne,
            CompOp::Lt,
            CompOp::Le,
            CompOp::Gt,
            CompOp::Ge,
        ] {
            // a op b == b flip(op) a on samples
            let a = Value::Int(3);
            let b = Value::Int(5);
            assert_eq!(op.eval(&a, &b), op.flip().eval(&b, &a));
        }
    }

    #[test]
    fn all_vars_includes_head_only_vars() {
        // unsafe query, but all_vars must still report X
        let q = ConjunctiveQuery::new("Q", vec![Term::var("X")], vec![]);
        assert!(q.all_vars().contains("X"));
    }
}
