//! A brute-force reference evaluator for differential testing.
//!
//! [`reference_evaluate`] enumerates *every* assignment of the
//! query's variables to values in the database's active domain and
//! checks all atoms and comparisons — semantics by definition, no
//! join ordering, no indexes, no early pruning. It is exponentially
//! slow and exists purely as an oracle: the optimized evaluator in
//! [`crate::eval`] must agree with it on every (small) instance.
//! Property tests in the workspace diff the two.

use crate::ast::{ConjunctiveQuery, Term};
use crate::error::Result;
use crate::safety::{check_against_catalog, check_safety};
use fgc_relation::{Database, Tuple, Value};
use std::collections::BTreeSet;

/// The active domain: every value occurring anywhere in the database,
/// plus every constant occurring in the query.
fn active_domain(db: &Database, q: &ConjunctiveQuery) -> Vec<Value> {
    let mut domain: BTreeSet<Value> = BTreeSet::new();
    for schema in db.catalog().iter() {
        let rel = db.relation(&schema.name).expect("catalog relation");
        for row in rel.iter() {
            for v in row.iter() {
                domain.insert(v.clone());
            }
        }
    }
    for atom in &q.atoms {
        for t in &atom.terms {
            if let Term::Const(c) = t {
                domain.insert(c.clone());
            }
        }
    }
    for c in &q.comparisons {
        for t in [&c.left, &c.right] {
            if let Term::Const(v) = t {
                domain.insert(v.clone());
            }
        }
    }
    domain.into_iter().collect()
}

/// Evaluate by exhaustive assignment enumeration. Returns distinct
/// output tuples, sorted (the reference order).
pub fn reference_evaluate(db: &Database, q: &ConjunctiveQuery) -> Result<Vec<Tuple>> {
    check_safety(q)?;
    check_against_catalog(q, db.catalog())?;
    let domain = active_domain(db, q);
    let vars: Vec<String> = q.all_vars().into_iter().map(str::to_string).collect();
    let mut out: BTreeSet<Tuple> = BTreeSet::new();
    let mut assignment: Vec<Value> = Vec::with_capacity(vars.len());
    enumerate(db, q, &vars, &domain, &mut assignment, &mut out);
    Ok(out.into_iter().collect())
}

fn lookup<'a>(vars: &[String], assignment: &'a [Value], t: &'a Term) -> Option<&'a Value> {
    match t {
        Term::Const(v) => Some(v),
        Term::Var(name) => vars
            .iter()
            .position(|v| v == name)
            .and_then(|i| assignment.get(i)),
    }
}

fn enumerate(
    db: &Database,
    q: &ConjunctiveQuery,
    vars: &[String],
    domain: &[Value],
    assignment: &mut Vec<Value>,
    out: &mut BTreeSet<Tuple>,
) {
    if assignment.len() == vars.len() {
        // check every atom...
        for atom in &q.atoms {
            let tuple: Option<Tuple> = atom
                .terms
                .iter()
                .map(|t| lookup(vars, assignment, t).cloned())
                .collect::<Option<Vec<Value>>>()
                .map(Tuple::new);
            let Some(tuple) = tuple else { return };
            let rel = db.relation(&atom.relation).expect("checked");
            if !rel.contains(&tuple) {
                return;
            }
        }
        // ...and every comparison...
        for cmp in &q.comparisons {
            let (Some(l), Some(r)) = (
                lookup(vars, assignment, &cmp.left),
                lookup(vars, assignment, &cmp.right),
            ) else {
                return;
            };
            if !cmp.op.eval(l, r) {
                return;
            }
        }
        // ...then project the head.
        let head: Vec<Value> = q
            .head
            .iter()
            .map(|t| lookup(vars, assignment, t).cloned().unwrap_or(Value::Null))
            .collect();
        out.insert(Tuple::new(head));
        return;
    }
    for v in domain {
        assignment.push(v.clone());
        enumerate(db, q, vars, domain, assignment, out);
        assignment.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::parser::parse_query;
    use fgc_relation::schema::RelationSchema;
    use fgc_relation::{tuple, DataType};

    fn tiny_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::with_names("R", &[("a", DataType::Str), ("b", DataType::Str)], &[])
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::with_names("S", &[("b", DataType::Str), ("c", DataType::Str)], &[])
                .unwrap(),
        )
        .unwrap();
        db.insert_all(
            "R",
            vec![tuple!["1", "x"], tuple!["2", "y"], tuple!["3", "x"]],
        )
        .unwrap();
        db.insert_all("S", vec![tuple!["x", "u"], tuple!["y", "v"]])
            .unwrap();
        db
    }

    fn diff(db: &Database, src: &str) {
        let q = parse_query(src).unwrap();
        let mut fast = evaluate(db, &q).unwrap();
        fast.sort();
        let slow = reference_evaluate(db, &q).unwrap();
        assert_eq!(fast, slow, "divergence on {src}");
    }

    #[test]
    fn agrees_on_scan() {
        diff(&tiny_db(), "Q(A, B) :- R(A, B)");
    }

    #[test]
    fn agrees_on_join() {
        diff(&tiny_db(), "Q(A, C) :- R(A, B), S(B, C)");
    }

    #[test]
    fn agrees_on_selection() {
        diff(&tiny_db(), "Q(A) :- R(A, B), B = \"x\"");
        diff(&tiny_db(), "Q(A) :- R(A, \"x\")");
    }

    #[test]
    fn agrees_on_inequalities() {
        diff(&tiny_db(), "Q(A) :- R(A, B), A != \"2\"");
        diff(&tiny_db(), "Q(A, A2) :- R(A, B), R(A2, B), A < A2");
    }

    #[test]
    fn agrees_on_self_join() {
        diff(&tiny_db(), "Q(A, A2) :- R(A, B), R(A2, B)");
    }

    #[test]
    fn agrees_on_empty_result() {
        diff(&tiny_db(), "Q(A) :- R(A, B), B = \"zzz\"");
    }

    #[test]
    fn agrees_on_constant_head() {
        diff(&tiny_db(), "Q(A, B) :- R(A, C), B = \"k\"");
    }

    #[test]
    fn rejects_unsafe_queries_too() {
        let q = parse_query("Q(X) :- R(A, B)").unwrap();
        assert!(reference_evaluate(&tiny_db(), &q).is_err());
    }
}
